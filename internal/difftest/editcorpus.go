package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"xpathest"
)

// EditCase is one regression entry of the edit corpus: a document and
// an edit script that once violated an edit-oracle invariant. The
// corpus test replays every case under the full configuration sweep,
// so a fixed maintenance bug stays fixed.
type EditCase struct {
	// Name is the file stem (without the .editcorpus extension).
	Name string

	// Comment is the free-text header: which invariant the case pins,
	// the originating seed, and what was wrong.
	Comment string

	// Invariant is the invariant the case originally violated.
	Invariant Invariant

	// DocXML and Ops are the minimized failing pair.
	DocXML string
	Ops    []xpathest.EditOp
}

// FormatEditOp renders one op in the corpus line format:
//
//	insert <loc> <index> <xml>
//	delete <loc>
//
// where <loc> is the dot-joined child-index path ("." for the root).
func FormatEditOp(op xpathest.EditOp) string {
	if op.Insert {
		return fmt.Sprintf("insert %s %d %s", formatLoc(op.Loc), op.Index, op.XML)
	}
	return "delete " + formatLoc(op.Loc)
}

// ParseEditOp parses the FormatEditOp line format.
func ParseEditOp(s string) (xpathest.EditOp, error) {
	fields := strings.SplitN(strings.TrimSpace(s), " ", 4)
	switch fields[0] {
	case "insert":
		if len(fields) != 4 {
			return xpathest.EditOp{}, fmt.Errorf("difftest: insert op needs loc, index and xml: %q", s)
		}
		loc, err := parseLoc(fields[1])
		if err != nil {
			return xpathest.EditOp{}, err
		}
		idx, err := strconv.Atoi(fields[2])
		if err != nil {
			return xpathest.EditOp{}, fmt.Errorf("difftest: insert index %q: %v", fields[2], err)
		}
		return xpathest.EditOp{Insert: true, Loc: loc, Index: idx, XML: fields[3]}, nil
	case "delete":
		if len(fields) != 2 {
			return xpathest.EditOp{}, fmt.Errorf("difftest: delete op needs exactly a loc: %q", s)
		}
		loc, err := parseLoc(fields[1])
		if err != nil {
			return xpathest.EditOp{}, err
		}
		return xpathest.EditOp{Loc: loc}, nil
	default:
		return xpathest.EditOp{}, fmt.Errorf("difftest: unknown edit op kind %q", fields[0])
	}
}

func formatLoc(loc []int) string {
	if len(loc) == 0 {
		return "."
	}
	parts := make([]string, len(loc))
	for i, v := range loc {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ".")
}

func parseLoc(s string) ([]int, error) {
	if s == "." {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	loc := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("difftest: loc component %q: %v", p, err)
		}
		loc[i] = v
	}
	return loc, nil
}

// FormatEditCase renders a case in the corpus file format: '#' comment
// lines followed by 'invariant:', 'doc:' and one 'op:' line per op.
func FormatEditCase(c EditCase) []byte {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(c.Comment, "\n"), "\n") {
		b.WriteString("# ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "invariant: %s\n", c.Invariant)
	fmt.Fprintf(&b, "doc: %s\n", c.DocXML)
	for _, op := range c.Ops {
		fmt.Fprintf(&b, "op: %s\n", FormatEditOp(op))
	}
	return []byte(b.String())
}

// ParseEditCase parses the corpus file format.
func ParseEditCase(name string, data []byte) (EditCase, error) {
	c := EditCase{Name: name}
	var comment []string
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case strings.HasPrefix(line, "#"):
			comment = append(comment, strings.TrimSpace(strings.TrimPrefix(line, "#")))
		case strings.HasPrefix(line, "invariant:"):
			c.Invariant = Invariant(strings.TrimSpace(strings.TrimPrefix(line, "invariant:")))
		case strings.HasPrefix(line, "doc:"):
			c.DocXML = strings.TrimSpace(strings.TrimPrefix(line, "doc:"))
		case strings.HasPrefix(line, "op:"):
			op, err := ParseEditOp(strings.TrimPrefix(line, "op:"))
			if err != nil {
				return c, fmt.Errorf("difftest: %s line %d: %v", name, ln+1, err)
			}
			c.Ops = append(c.Ops, op)
		default:
			return c, fmt.Errorf("difftest: %s line %d: unrecognized corpus line %q", name, ln+1, line)
		}
	}
	c.Comment = strings.Join(comment, "\n")
	if c.DocXML == "" || len(c.Ops) == 0 {
		return c, fmt.Errorf("difftest: %s: edit corpus case missing doc or ops", name)
	}
	return c, nil
}

// LoadEditCorpus reads every *.editcorpus file of a directory, sorted
// by name.
func LoadEditCorpus(dir string) ([]EditCase, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cases []EditCase
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".editcorpus") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		c, err := ParseEditCase(strings.TrimSuffix(e.Name(), ".editcorpus"), data)
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}

// WriteEditCase saves a case as <dir>/<name>.editcorpus (xpestdiff
// emits shrunk edit violations this way, ready to commit) and returns
// the path.
func WriteEditCase(dir string, c EditCase) (string, error) {
	if c.Name == "" {
		return "", fmt.Errorf("difftest: edit corpus case needs a name")
	}
	path := filepath.Join(dir, c.Name+".editcorpus")
	if err := os.WriteFile(path, FormatEditCase(c), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// CheckEditCase replays the full edit-oracle sweep on one corpus case
// and returns the surviving violations (empty means the regression
// stays fixed).
func CheckEditCase(c EditCase) ([]EditViolation, error) {
	res, err := NewEditChecker().CheckScript(c.DocXML, c.Ops, 0)
	if err != nil {
		return nil, fmt.Errorf("difftest: edit corpus %s: %v", c.Name, err)
	}
	return res.Violations, nil
}
