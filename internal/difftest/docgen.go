// Package difftest is the randomized differential-correctness harness:
// it manufactures (document, query) pairs far nastier than the three
// datagen datasets, compares the exact evaluator against the estimator
// run five independent ways, enforces the paper's hard invariants
// (§2 Cases 1–2 exactness, non-negativity, the tag-frequency bound,
// predicate monotonicity, bit-identity across estimator paths), and
// shrinks any failing pair to a minimal repro that can be committed to
// the regression corpus under corpus/.
//
// Everything is seeded and pure: a failure report carries the seed that
// reproduces it, and the shrinker is deterministic, so the same seed
// always yields the same minimal repro. docs/TESTING.md documents the
// workflow.
package difftest

import (
	"math/rand"

	"xpathest/internal/xmltree"
)

// DocConfig controls one random document. The zero value is replaced
// by DefaultDocConfig-style fields drawn from the seed itself, so the
// harness sweeps the configuration space as it sweeps seeds.
type DocConfig struct {
	// Alphabet is the number of distinct tags (≥ 1).
	Alphabet int

	// MaxDepth bounds the tree depth (root at depth 1).
	MaxDepth int

	// MaxNodes bounds the total element count; generation stops adding
	// children once reached.
	MaxNodes int

	// FanoutSkew picks the children-per-node distribution: 0 uniform,
	// 1 zipf-ish (a few huge fanouts, many leaves), 2 bimodal (either
	// barren or bushy).
	FanoutSkew int

	// Recursive allows a tag to reappear below itself. Recursion is
	// exactly what voids Theorem 4.1's exactness premise, so the
	// harness needs both populations.
	Recursive bool

	// SiblingPattern shapes sibling order: 0 shuffled, 1 runs of equal
	// tags (AAABBB), 2 strict alternation (ABABAB) — order-axis
	// statistics react to all three differently.
	SiblingPattern int
}

// docConfigFromSeed derives a configuration from the seed so that a
// single integer both reproduces the document and names its shape.
func docConfigFromSeed(seed int64) DocConfig {
	rng := rand.New(rand.NewSource(seed ^ 0x5e5e5e))
	return DocConfig{
		Alphabet:       2 + rng.Intn(9),    // 2..10 tags
		MaxDepth:       3 + rng.Intn(6),    // 3..8
		MaxNodes:       20 + rng.Intn(181), // 20..200
		FanoutSkew:     rng.Intn(3),
		Recursive:      rng.Intn(3) == 0, // one third recursive
		SiblingPattern: rng.Intn(3),
	}
}

// GenDoc builds the random document of one seed: configuration and
// content are both derived from it. The result is deterministic.
func GenDoc(seed int64) *xmltree.Document {
	return GenDocConfig(seed, docConfigFromSeed(seed))
}

// GenDocConfig builds a random document under an explicit
// configuration (the shrinker and tests pin configurations directly).
func GenDocConfig(seed int64, cfg DocConfig) *xmltree.Document {
	if cfg.Alphabet < 1 {
		cfg.Alphabet = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MaxNodes < 1 {
		cfg.MaxNodes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	tags := make([]string, cfg.Alphabet)
	for i := range tags {
		tags[i] = tagName(i)
	}

	b := xmltree.NewBuilder()
	nodes := 1
	b.Open(tags[0])

	var grow func(depth, tagIdx int)
	grow = func(depth, tagIdx int) {
		if depth >= cfg.MaxDepth || nodes >= cfg.MaxNodes {
			return
		}
		fan := fanout(rng, cfg.FanoutSkew)
		if fan == 0 {
			return
		}
		childTags := siblingTags(rng, cfg, tags, tagIdx, fan)
		for _, ti := range childTags {
			if nodes >= cfg.MaxNodes {
				return
			}
			nodes++
			b.Open(tags[ti])
			if rng.Intn(4) == 0 {
				b.Text("t")
			}
			grow(depth+1, ti)
			b.Close()
		}
	}
	grow(1, 0)
	b.Close()
	return b.Document()
}

// tagName yields a, b, ..., z, t26, t27, ...
func tagName(i int) string {
	if i < 26 {
		return string(rune('a' + i))
	}
	return "t" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	w := len(buf)
	for i > 0 {
		w--
		buf[w] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[w:])
}

// fanout draws a child count under the configured skew.
func fanout(rng *rand.Rand, skew int) int {
	switch skew {
	case 1: // zipf-ish: mostly 0–2, occasionally large
		r := rng.Intn(16)
		switch {
		case r < 8:
			return rng.Intn(2)
		case r < 14:
			return 1 + rng.Intn(3)
		default:
			return 4 + rng.Intn(8)
		}
	case 2: // bimodal: barren or bushy
		if rng.Intn(2) == 0 {
			return 0
		}
		return 3 + rng.Intn(4)
	default: // uniform 0..4
		return rng.Intn(5)
	}
}

// siblingTags picks the tag of each child and arranges sibling order
// per the configured pattern. Non-recursive configurations never reuse
// the parent's tag (or a smaller index, which keeps every root-to-leaf
// path strictly increasing and therefore recursion-free).
func siblingTags(rng *rand.Rand, cfg DocConfig, tags []string, parentIdx, fan int) []int {
	// Candidate tag indices for children.
	var cand []int
	if cfg.Recursive {
		for i := range tags {
			cand = append(cand, i)
		}
	} else {
		for i := parentIdx + 1; i < len(tags); i++ {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	out := make([]int, 0, fan)
	switch cfg.SiblingPattern {
	case 1: // runs: AAABBB...
		for len(out) < fan {
			t := cand[rng.Intn(len(cand))]
			run := 1 + rng.Intn(3)
			for r := 0; r < run && len(out) < fan; r++ {
				out = append(out, t)
			}
		}
	case 2: // alternation: ABABAB
		a := cand[rng.Intn(len(cand))]
		c := cand[rng.Intn(len(cand))]
		for i := 0; i < fan; i++ {
			if i%2 == 0 {
				out = append(out, a)
			} else {
				out = append(out, c)
			}
		}
	default: // shuffled
		for i := 0; i < fan; i++ {
			out = append(out, cand[rng.Intn(len(cand))])
		}
	}
	return out
}

// IsRecursive reports whether any tag repeats on some root-to-leaf
// path of the document — the condition under which Theorem 4.1's
// exactness premise (and therefore the case12-exact invariant) does
// not apply.
func IsRecursive(doc *xmltree.Document) bool {
	rec := false
	onPath := map[string]int{}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if rec {
			return
		}
		if onPath[n.Tag] > 0 {
			rec = true
			return
		}
		onPath[n.Tag]++
		for _, c := range n.Children {
			walk(c)
		}
		onPath[n.Tag]--
	}
	if doc.Root != nil {
		walk(doc.Root)
	}
	return rec
}
