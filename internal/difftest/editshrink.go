package difftest

import (
	"xpathest"
	"xpathest/internal/xmltree"
)

// ShrinkEditViolation minimizes the (document, script) pair of an
// edit-oracle violation while the same invariant keeps failing, and
// returns the violation rewritten to the minimal pair. The candidate
// order is fixed, so shrinking is deterministic. A candidate the
// checker rejects outright (op locations invalidated by a reduction)
// counts as not-failing.
func ShrinkEditViolation(chk *EditChecker, v EditViolation) EditViolation {
	fails := func(docXML string, ops []xpathest.EditOp) bool {
		return editStillFails(chk, v.Invariant, v.Config, docXML, ops, v.Seed)
	}
	if !fails(v.DocXML, v.Ops) {
		return v // not reproducible; return unchanged
	}
	// Ops past the failing step never executed; drop them first.
	if v.Step+1 < len(v.Ops) {
		if tr := v.Ops[:v.Step+1]; fails(v.DocXML, tr) {
			v.Ops = tr
		}
	}
	for rounds := 0; rounds < 200; rounds++ {
		if ops, ok := shrinkOpsOnce(v.DocXML, v.Ops, fails); ok {
			v.Ops = ops
			continue
		}
		if next, ok := shrinkTreeOnce(v.DocXML, func(x string) bool { return fails(x, v.Ops) }); ok {
			v.DocXML = next
			continue
		}
		break
	}
	return refreshEditDetail(chk, v)
}

// refreshEditDetail re-runs the oracle on the shrunk pair so the
// report carries the minimal pair's own step and numbers.
func refreshEditDetail(chk *EditChecker, v EditViolation) EditViolation {
	c2 := &EditChecker{Configs: []SummaryConfig{v.Config}, Inject: chk.Inject, QueriesPerStep: chk.QueriesPerStep}
	res, err := c2.CheckScript(v.DocXML, v.Ops, v.Seed)
	if err != nil {
		return v
	}
	for _, nv := range res.Violations {
		if nv.Invariant == v.Invariant {
			v.Step, v.Detail = nv.Step, nv.Detail
			return v
		}
	}
	return v
}

// editStillFails re-runs the oracle on a candidate pair and reports
// whether the given invariant still fires for it.
func editStillFails(chk *EditChecker, inv Invariant, cfg SummaryConfig, docXML string, ops []xpathest.EditOp, seed int64) bool {
	if len(ops) == 0 {
		return false
	}
	c2 := &EditChecker{Configs: []SummaryConfig{cfg}, Inject: chk.Inject, QueriesPerStep: chk.QueriesPerStep}
	res, err := c2.CheckScript(docXML, ops, seed)
	if err != nil {
		return false
	}
	for _, v := range res.Violations {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

// shrinkOpsOnce tries single-reduction script candidates in a fixed
// order: drop one op, then reduce one insert payload by a single-node
// subtree removal or hoist.
func shrinkOpsOnce(docXML string, ops []xpathest.EditOp, fails func(string, []xpathest.EditOp) bool) ([]xpathest.EditOp, bool) {
	for i := range ops {
		cand := append(append([]xpathest.EditOp(nil), ops[:i]...), ops[i+1:]...)
		if fails(docXML, cand) {
			return cand, true
		}
	}
	for i, op := range ops {
		if !op.Insert {
			continue
		}
		for _, nx := range payloadCandidates(op.XML) {
			cand := append([]xpathest.EditOp(nil), ops...)
			cand[i].XML = nx
			if fails(docXML, cand) {
				return cand, true
			}
		}
	}
	return nil, false
}

// payloadCandidates enumerates the single-node reductions of one
// insert payload (every subtree removal, then every hoist), in a
// deterministic order.
func payloadCandidates(xmlStr string) []string {
	tree, err := parseTree(xmlStr)
	if err != nil {
		return nil
	}
	var out []string
	var all []*xmltree.Node
	tree.Walk(func(n *xmltree.Node) bool {
		if n != tree.Root {
			all = append(all, n)
		}
		return true
	})
	for _, n := range all {
		if next, ok := rebuildWithout(tree, n, false); ok {
			out = append(out, next)
		}
	}
	for _, n := range all {
		if len(n.Children) == 0 {
			continue
		}
		if next, ok := rebuildWithout(tree, n, true); ok {
			out = append(out, next)
		}
	}
	return out
}
