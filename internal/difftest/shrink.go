package difftest

import (
	"bytes"
	"sort"

	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

// ShrinkViolation minimizes the (document, query) pair of a violation
// while the same invariant keeps failing, and returns the violation
// rewritten to the minimal pair. The shrinker is deterministic: the
// same input violation always reduces to the same repro.
func ShrinkViolation(chk *Checker, v Violation) Violation {
	fails := func(xmlStr, query string) bool {
		return stillFails(chk, v.Invariant, v.Config, xmlStr, query)
	}
	xmlStr, query := Shrink(v.DocXML, v.Query, fails)
	v.DocXML, v.Query = xmlStr, query
	v.Detail = refreshDetail(chk, v)
	return v
}

// refreshDetail re-runs the oracle on the shrunk pair to report the
// minimal pair's own numbers rather than the original's.
func refreshDetail(chk *Checker, v Violation) string {
	pair, err := NewPair(v.DocXML)
	if err != nil {
		return v.Detail
	}
	c2 := &Checker{Configs: []SummaryConfig{v.Config}, Inject: chk.Inject, TagBoundSlack: chk.TagBoundSlack}
	for _, nv := range c2.CheckDoc(pair, []string{v.Query}).Violations {
		if nv.Invariant == v.Invariant {
			return nv.Detail
		}
	}
	return v.Detail
}

// stillFails re-runs the oracle on a candidate pair and reports
// whether the given invariant still fires for it.
func stillFails(chk *Checker, inv Invariant, cfg SummaryConfig, xmlStr, query string) bool {
	pair, err := NewPair(xmlStr)
	if err != nil {
		return false
	}
	c2 := &Checker{Configs: []SummaryConfig{cfg}, Inject: chk.Inject, TagBoundSlack: chk.TagBoundSlack}
	res := c2.CheckDoc(pair, []string{query})
	for _, v := range res.Violations {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

// Shrink greedily minimizes a failing (document, query) pair under the
// predicate: document subtrees are dropped or hoisted, query steps and
// predicates removed, and the tag alphabet canonicalized, until no
// single reduction keeps the pair failing. The candidate order is
// fixed, so shrinking is deterministic.
func Shrink(xmlStr, query string, fails func(xmlStr, query string) bool) (string, string) {
	if !fails(xmlStr, query) {
		return xmlStr, query // not reproducible; return unchanged
	}
	for rounds := 0; rounds < 400; rounds++ {
		if next, ok := shrinkDocOnce(xmlStr, query, fails); ok {
			xmlStr = next
			continue
		}
		if next, ok := shrinkQueryOnce(xmlStr, query, fails); ok {
			query = next
			continue
		}
		if nx, nq, ok := shrinkTagsOnce(xmlStr, query, fails); ok {
			xmlStr, query = nx, nq
			continue
		}
		break
	}
	return xmlStr, query
}

// shrinkDocOnce tries single-node reductions — deleting a subtree, or
// hoisting a node's children into its place — biggest subtrees first,
// and additionally dropping all text. Returns the first successful
// candidate.
func shrinkDocOnce(xmlStr, query string, fails func(string, string) bool) (string, bool) {
	return shrinkTreeOnce(xmlStr, func(x string) bool { return fails(x, query) })
}

// shrinkTreeOnce is the document-reduction kernel shared by the query
// and edit-script shrinkers: one successful single-node reduction under
// the predicate, or false.
func shrinkTreeOnce(xmlStr string, fails func(string) bool) (string, bool) {
	tree, err := parseTree(xmlStr)
	if err != nil {
		return "", false
	}
	type cand struct {
		node *xmltree.Node
		size int
	}
	var cands []cand
	sizes := map[*xmltree.Node]int{}
	var measure func(n *xmltree.Node) int
	measure = func(n *xmltree.Node) int {
		s := 1
		for _, c := range n.Children {
			s += measure(c)
		}
		sizes[n] = s
		return s
	}
	measure(tree.Root)
	tree.Walk(func(n *xmltree.Node) bool {
		if n != tree.Root {
			cands = append(cands, cand{n, sizes[n]})
		}
		return true
	})
	// Biggest subtree first; ties in document order (Ord ascending) —
	// both deterministic.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].size > cands[j].size })

	for _, c := range cands {
		if next, ok := rebuildWithout(tree, c.node, false); ok && fails(next) {
			return next, true
		}
	}
	for _, c := range cands {
		if len(c.node.Children) == 0 {
			continue
		}
		if next, ok := rebuildWithout(tree, c.node, true); ok && fails(next) {
			return next, true
		}
	}
	if next, ok := rebuildNoText(tree); ok && next != xmlStr && fails(next) {
		return next, true
	}
	return "", false
}

// rebuildWithout re-serializes the tree with victim removed (hoist:
// its children take its place).
func rebuildWithout(tree *xmltree.Document, victim *xmltree.Node, hoist bool) (string, bool) {
	b := xmltree.NewBuilder()
	var emit func(n *xmltree.Node)
	emit = func(n *xmltree.Node) {
		if n == victim {
			if hoist {
				for _, c := range n.Children {
					emit(c)
				}
			}
			return
		}
		b.Open(n.Tag)
		if n.Text != "" {
			b.Text(n.Text)
		}
		for _, c := range n.Children {
			emit(c)
		}
		b.Close()
	}
	if tree.Root == victim {
		return "", false
	}
	emit(tree.Root)
	return serialize(b)
}

func rebuildNoText(tree *xmltree.Document) (string, bool) {
	b := xmltree.NewBuilder()
	var emit func(n *xmltree.Node)
	emit = func(n *xmltree.Node) {
		b.Open(n.Tag)
		for _, c := range n.Children {
			emit(c)
		}
		b.Close()
	}
	emit(tree.Root)
	return serialize(b)
}

func serialize(b *xmltree.Builder) (string, bool) {
	if b.Depth() != 0 {
		return "", false
	}
	var buf bytes.Buffer
	if err := b.Document().WriteXML(&buf, false); err != nil {
		return "", false
	}
	return buf.String(), true
}

func parseTree(xmlStr string) (*xmltree.Document, error) {
	return xmltree.ParseString(xmlStr)
}

// shrinkQueryOnce tries single query reductions in a fixed order:
// remove a predicate, remove a step, clear a positional filter, clear
// an explicit target mark.
func shrinkQueryOnce(xmlStr, query string, fails func(string, string) bool) (string, bool) {
	p, err := xpath.Parse(query)
	if err != nil {
		return "", false
	}
	for _, cand := range queryCandidates(p) {
		if cand.String() == query || len(cand.Steps) == 0 {
			continue
		}
		if _, err := xpath.Parse(cand.String()); err != nil {
			continue
		}
		if fails(xmlStr, cand.String()) {
			return cand.String(), true
		}
	}
	return "", false
}

// queryCandidates enumerates every single-reduction clone of p in a
// deterministic order.
func queryCandidates(p *xpath.Path) []*xpath.Path {
	var out []*xpath.Path

	// Remove one predicate (clone k, then drop pred j of step i in the
	// clone's step enumeration).
	steps := flattenSteps(p)
	for i, s := range steps {
		for j := range s.Preds {
			c := p.Clone()
			cs := flattenSteps(c)[i]
			cs.Preds = append(cs.Preds[:j:j], cs.Preds[j+1:]...)
			out = append(out, c)
		}
	}

	// Remove one step from whichever sub-path holds it.
	for i := range steps {
		c := p.Clone()
		if removeNthStep(c, i) {
			out = append(out, c)
		}
	}

	// Clear positional filters and explicit target marks.
	for i, s := range steps {
		if s.Pos != xpath.PosNone {
			c := p.Clone()
			flattenSteps(c)[i].Pos = xpath.PosNone
			out = append(out, c)
		}
		if s.Target {
			c := p.Clone()
			flattenSteps(c)[i].Target = false
			out = append(out, c)
		}
	}
	return out
}

// flattenSteps lists every step, predicates included, in a fixed
// preorder (mirrors the clone structure index-for-index).
func flattenSteps(p *xpath.Path) []*xpath.Step {
	var out []*xpath.Step
	var rec func(q *xpath.Path)
	rec = func(q *xpath.Path) {
		for _, s := range q.Steps {
			out = append(out, s)
			for _, pred := range s.Preds {
				rec(pred)
			}
		}
	}
	rec(p)
	return out
}

// removeNthStep deletes the n-th step (flattenSteps order) from its
// containing path; an emptied predicate path is detached from its
// holder. Returns false when the removal empties the outermost path.
func removeNthStep(p *xpath.Path, n int) bool {
	count := -1
	var rec func(q *xpath.Path, holder *xpath.Step, predIdx int) (bool, bool)
	// Returns (removed, pathNowEmpty).
	rec = func(q *xpath.Path, holder *xpath.Step, predIdx int) (bool, bool) {
		for i := 0; i < len(q.Steps); i++ {
			s := q.Steps[i]
			count++
			if count == n {
				q.Steps = append(q.Steps[:i:i], q.Steps[i+1:]...)
				return true, len(q.Steps) == 0
			}
			for j := 0; j < len(s.Preds); j++ {
				removed, empty := rec(s.Preds[j], s, j)
				if removed {
					if empty {
						s.Preds = append(s.Preds[:j:j], s.Preds[j+1:]...)
					}
					return true, false
				}
			}
		}
		_ = holder
		_ = predIdx
		return false, false
	}
	removed, rootEmpty := rec(p, nil, -1)
	return removed && !rootEmpty
}

// shrinkTagsOnce canonicalizes the tag alphabet: distinct document
// tags in document order become "a", "b", "c", ... in both the
// document and the query. One all-at-once attempt.
func shrinkTagsOnce(xmlStr, query string, fails func(string, string) bool) (string, string, bool) {
	tree, err := parseTree(xmlStr)
	if err != nil {
		return "", "", false
	}
	var order []string
	seen := map[string]bool{}
	tree.Walk(func(n *xmltree.Node) bool {
		if !seen[n.Tag] {
			seen[n.Tag] = true
			order = append(order, n.Tag)
		}
		return true
	})
	mapping := map[string]string{}
	changed := false
	for i, t := range order {
		nt := tagName(i)
		mapping[t] = nt
		if nt != t {
			changed = true
		}
	}
	if !changed {
		return "", "", false
	}

	b := xmltree.NewBuilder()
	var emit func(n *xmltree.Node)
	emit = func(n *xmltree.Node) {
		b.Open(mapping[n.Tag])
		if n.Text != "" {
			b.Text(n.Text)
		}
		for _, c := range n.Children {
			emit(c)
		}
		b.Close()
	}
	emit(tree.Root)
	nx, ok := serialize(b)
	if !ok {
		return "", "", false
	}

	p, err := xpath.Parse(query)
	if err != nil {
		return "", "", false
	}
	for _, s := range flattenSteps(p) {
		if nt, ok := mapping[s.Tag]; ok && s.Tag != "*" {
			s.Tag = nt
		}
	}
	nq := p.String()
	if fails(nx, nq) {
		return nx, nq, true
	}
	return "", "", false
}
