package difftest

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"xpathest"
	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

// SummaryConfig names one synopsis construction the oracle runs the
// estimator paths under.
type SummaryConfig struct {
	PVariance float64
	OVariance float64
	Exact     bool
}

func (c SummaryConfig) String() string {
	return fmt.Sprintf("pvar=%g ovar=%g exact=%v", c.PVariance, c.OVariance, c.Exact)
}

func (c SummaryConfig) options() xpathest.SummaryOptions {
	return xpathest.SummaryOptions{PVariance: c.PVariance, OVariance: c.OVariance, Exact: c.Exact}
}

// exactStats reports whether the config carries exact statistics —
// the premise of the hard exactness invariant.
func (c SummaryConfig) exactStats() bool {
	return c.Exact || (c.PVariance == 0 && c.OVariance == 0)
}

// DefaultConfigs is the synopsis sweep of one oracle run: the exact
// table source, its supposedly equivalent variance-0 histograms, and
// one lossy configuration inside the paper's recommended ranges.
func DefaultConfigs() []SummaryConfig {
	return []SummaryConfig{
		{Exact: true},
		{PVariance: 0, OVariance: 0},
		{PVariance: 2, OVariance: 4},
	}
}

// Invariant names one checked property; corpus entries and violation
// reports carry it.
type Invariant string

const (
	// InvPathsAgree: the five estimator paths — cold kernel, warmed
	// kernel, EstimateBatch, a summary serialized through summaryio and
	// read back, and the epoch-keyed result cache's hit path — return
	// bit-identical values (or identical errors). Estimation is a pure
	// function of (summary, query).
	InvPathsAgree Invariant = "paths-agree"

	// InvNonNegative: every estimate is a finite value ≥ 0.
	InvNonNegative Invariant = "non-negative"

	// InvTagBound: an estimate never exceeds the document frequency of
	// the target's tag (hard under exact statistics; lossy histograms
	// get a small relative tolerance).
	InvTagBound Invariant = "tag-bound"

	// InvCase12Exact: §2 Cases 1–2 / Theorem 4.1 — on a non-recursive
	// document with exact statistics, a simple query (child/descendant
	// steps only, no predicates, no positional filters, no wildcard)
	// is estimated exactly.
	InvCase12Exact Invariant = "case12-exact"

	// InvPredMonotone: adding a predicate to the target step of a
	// linear no-order query cannot increase the estimate (the join
	// only ever prunes).
	InvPredMonotone Invariant = "pred-monotone"

	// InvExactAgree: ExactCount, IndexedCount (the structural-join
	// accelerated evaluator) and len(Matches) agree on the true count.
	InvExactAgree Invariant = "exact-agree"
)

// Violation is one invariant failure, self-contained enough to
// reproduce: the document XML, the query, and the synopsis config.
type Violation struct {
	Invariant Invariant
	Config    SummaryConfig
	Query     string
	Detail    string
	DocXML    string
	Seed      int64 // generating seed, when the harness produced the pair
}

func (v Violation) String() string {
	return fmt.Sprintf("%s [%s] query %s: %s", v.Invariant, v.Config, v.Query, v.Detail)
}

// Pair is one document prepared for differential checking.
type Pair struct {
	XML       string
	Doc       *xpathest.Document
	Tree      *xmltree.Document
	Recursive bool
}

// NewPair parses the XML through the public API (the same route user
// documents take) and the internal tree (for shrinking and the
// recursion classifier).
func NewPair(xmlStr string) (*Pair, error) {
	d, err := xpathest.ParseDocumentString(xmlStr)
	if err != nil {
		return nil, err
	}
	t, err := xmltree.ParseString(xmlStr)
	if err != nil {
		return nil, err
	}
	return &Pair{XML: xmlStr, Doc: d, Tree: t, Recursive: IsRecursive(t)}, nil
}

// PairFromTree serializes a built tree and re-parses it, so that every
// checked document also exercises the WriteXML/Parse roundtrip.
func PairFromTree(t *xmltree.Document) (*Pair, error) {
	var buf bytes.Buffer
	if err := t.WriteXML(&buf, false); err != nil {
		return nil, err
	}
	return NewPair(buf.String())
}

// Injected bugs for the harness self-test: the oracle must catch them
// and the shrinker must reduce them. They simulate kernel defects at
// the boundary where the oracle reads estimates, so the production
// kernel stays untouched.
const (
	// InjectNone is normal operation.
	InjectNone = ""
	// InjectOvercountDesc adds 1 to every estimate of a query with a
	// descendant step — a simulated join-kernel overcount. All five
	// paths are affected identically, so exactness and the tag bound
	// catch it, not path agreement.
	InjectOvercountDesc = "overcount-desc"
	// InjectSkewWarm perturbs only the warmed-kernel path — a simulated
	// memo-corruption bug; path agreement catches it.
	InjectSkewWarm = "skew-warm"
)

// Checker runs the oracle over (document, query) pairs.
type Checker struct {
	Configs []SummaryConfig

	// Inject enables a simulated bug (see the Inject constants).
	Inject string

	// TagBoundSlack is the relative tolerance of the tag-frequency
	// bound under lossy histograms (exact statistics always get 0).
	TagBoundSlack float64
}

// NewChecker returns a Checker over the default config sweep.
func NewChecker() *Checker {
	return &Checker{Configs: DefaultConfigs(), TagBoundSlack: 1e-6}
}

// Result aggregates one CheckDoc run.
type Result struct {
	Violations []Violation

	// QueriesChecked counts (query, config) combinations evaluated.
	QueriesChecked int

	// EstimatorRejected counts combinations where all estimator paths
	// consistently returned an error (unsupported query shapes).
	EstimatorRejected int

	// RelErrSum / RelErrN accumulate relative error of the warmed path
	// against the exact count over positive-selectivity queries, per
	// config — the soft accuracy budget input.
	RelErrSum map[SummaryConfig]float64
	RelErrN   map[SummaryConfig]int
}

func (r *Result) merge(o Result) {
	r.Violations = append(r.Violations, o.Violations...)
	r.QueriesChecked += o.QueriesChecked
	r.EstimatorRejected += o.EstimatorRejected
	if r.RelErrSum == nil {
		r.RelErrSum = map[SummaryConfig]float64{}
		r.RelErrN = map[SummaryConfig]int{}
	}
	for k, v := range o.RelErrSum {
		r.RelErrSum[k] += v
	}
	for k, v := range o.RelErrN {
		r.RelErrN[k] += v
	}
}

// estimate is one estimator-path outcome.
type estimate struct {
	val float64
	err error
}

func (e estimate) String() string {
	if e.err != nil {
		return "error: " + e.err.Error()
	}
	return fmt.Sprintf("%v (bits %#x)", e.val, math.Float64bits(e.val))
}

func sameOutcome(a, b estimate) bool {
	if (a.err != nil) != (b.err != nil) {
		return false
	}
	if a.err != nil {
		return a.err.Error() == b.err.Error()
	}
	return math.Float64bits(a.val) == math.Float64bits(b.val)
}

// perturb applies the injected bug to one path's outcome.
func (c *Checker) perturb(path, query string, e estimate) estimate {
	if e.err != nil {
		return e
	}
	switch c.Inject {
	case InjectOvercountDesc:
		if strings.Contains(query, "//") {
			e.val++
		}
	case InjectSkewWarm:
		if path == "warm" && strings.Contains(query, "//") {
			e.val++
		}
	}
	return e
}

// CheckDoc runs every query against the document under every synopsis
// config and returns the collected violations and accuracy tallies.
func (c *Checker) CheckDoc(p *Pair, queries []string) Result {
	res := Result{
		RelErrSum: map[SummaryConfig]float64{},
		RelErrN:   map[SummaryConfig]int{},
	}

	type exactOutcome struct {
		count int
		err   error
	}
	exacts := make([]exactOutcome, len(queries))
	for i, q := range queries {
		n, err := p.Doc.ExactCount(q)
		exacts[i] = exactOutcome{n, err}

		// exact-agree: the accelerated evaluator and the match list
		// must reproduce the plain evaluator (independent of any
		// summary config — checked once per query).
		if err == nil {
			if ni, ierr := p.Doc.IndexedCount(q); ierr != nil || ni != n {
				res.Violations = append(res.Violations, Violation{
					Invariant: InvExactAgree, Query: q, DocXML: p.XML,
					Detail: fmt.Sprintf("ExactCount=%d IndexedCount=%d (err=%v)", n, ni, ierr),
				})
			}
			if ms, merr := p.Doc.Matches(q); merr != nil || len(ms) != n {
				res.Violations = append(res.Violations, Violation{
					Invariant: InvExactAgree, Query: q, DocXML: p.XML,
					Detail: fmt.Sprintf("ExactCount=%d len(Matches)=%d (err=%v)", n, len(ms), merr),
				})
			}
		}
	}

	for _, cfg := range c.Configs {
		warm := p.Doc.BuildSummary(cfg.options())

		// Serialize/deserialize once per config; a failure here is a
		// paths-agree violation for every query (the path is gone).
		var rt *xpathest.Summary
		var buf bytes.Buffer
		rtErr := warm.Save(&buf)
		if rtErr == nil {
			rt, rtErr = xpathest.ReadSummary(bytes.NewReader(buf.Bytes()))
		}

		// Warm pass: run the whole workload once so the memoized kernel
		// maps are hot before the measured pass.
		for _, q := range queries {
			_, _ = warm.Estimate(q) // warming only; outcome re-read below
		}

		batch := warm.EstimateBatch(queries)

		// The cached path serves every query through the result cache's
		// hit path: populate via the warmed summary, then re-read. The
		// compared value is exactly what a second client would be served
		// from cache.
		cache := xpathest.NewEstimateCache(1 << 20)
		// The harness owns the only handle on this cache and never swaps
		// a registry under it, so one synthetic epoch covers the run —
		// held in a local so every cache call demonstrably shares it.
		cacheEpoch := uint64(1)

		for i, q := range queries {
			res.QueriesChecked++

			cold := p.Doc.BuildSummary(cfg.options())
			cv, cerr := cold.Estimate(q)
			wv, werr := warm.Estimate(q)
			paths := map[string]estimate{
				"cold":  c.perturb("cold", q, estimate{cv, cerr}),
				"warm":  c.perturb("warm", q, estimate{wv, werr}),
				"batch": c.perturb("batch", q, estimate{batch[i].Estimate, batch[i].Err}),
			}
			if rtErr != nil {
				paths["roundtrip"] = estimate{0, fmt.Errorf("summary roundtrip unavailable: %w", rtErr)}
			} else {
				rv, rerr := rt.Estimate(q)
				paths["roundtrip"] = c.perturb("roundtrip", q, estimate{rv, rerr})
			}

			var cached estimate
			if qc, cerr := xpathest.CompileQuery(q); cerr != nil {
				cached = estimate{0, cerr}
			} else if _, err := cache.EstimateQuery(cacheEpoch, "difftest", warm, qc); err != nil {
				cached = estimate{0, err}
			} else if hv, ok := cache.Get(cacheEpoch, "difftest", qc); !ok {
				cached = estimate{0, fmt.Errorf("result cache dropped a just-stored estimate")}
			} else {
				cached = estimate{hv, nil}
			}
			paths["cached"] = c.perturb("cached", q, cached)

			ref := paths["cold"]
			for _, name := range []string{"warm", "batch", "roundtrip", "cached"} {
				if !sameOutcome(ref, paths[name]) {
					res.Violations = append(res.Violations, Violation{
						Invariant: InvPathsAgree, Config: cfg, Query: q, DocXML: p.XML,
						Detail: fmt.Sprintf("cold=%v %s=%v", ref, name, paths[name]),
					})
				}
			}

			if ref.err != nil {
				res.EstimatorRejected++
				continue
			}
			est := ref.val
			exact := exacts[i]

			if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
				res.Violations = append(res.Violations, Violation{
					Invariant: InvNonNegative, Config: cfg, Query: q, DocXML: p.XML,
					Detail: fmt.Sprintf("estimate %v", est),
				})
				continue
			}

			if d := c.checkTagBound(p, cfg, q, est); d != "" {
				res.Violations = append(res.Violations, Violation{
					Invariant: InvTagBound, Config: cfg, Query: q, DocXML: p.XML, Detail: d,
				})
			}

			if cfg.exactStats() && !p.Recursive && exact.err == nil && isCase12(q) {
				if est != float64(exact.count) {
					res.Violations = append(res.Violations, Violation{
						Invariant: InvCase12Exact, Config: cfg, Query: q, DocXML: p.XML,
						Detail: fmt.Sprintf("estimate %v, exact %d", est, exact.count),
					})
				}
			}

			if d := c.checkPredMonotone(warm, q, est); d != "" {
				res.Violations = append(res.Violations, Violation{
					Invariant: InvPredMonotone, Config: cfg, Query: q, DocXML: p.XML, Detail: d,
				})
			}

			if exact.err == nil && exact.count > 0 {
				res.RelErrSum[cfg] += math.Abs(est-float64(exact.count)) / float64(exact.count)
				res.RelErrN[cfg]++
			}
		}
	}
	return res
}

// checkTagBound verifies est ≤ frequency of the target tag. Exact
// statistics get no slack; lossy histograms get TagBoundSlack.
func (c *Checker) checkTagBound(p *Pair, cfg SummaryConfig, q string, est float64) string {
	path, err := xpath.Parse(q)
	if err != nil {
		return ""
	}
	tgt, err := path.TargetStep()
	if err != nil {
		return ""
	}
	bound := float64(p.Doc.TagCount(tgt.Tag))
	slack := 0.0
	if !cfg.exactStats() {
		slack = c.TagBoundSlack
	}
	if est > bound*(1+slack)+slack {
		return fmt.Sprintf("estimate %v exceeds frequency %v of target tag %q", est, bound, tgt.Tag)
	}
	return ""
}

// isCase12 reports whether the query is in the exactly-estimable class
// of §2 Cases 1–2 / Theorem 4.1: a linear child/descendant path with
// no predicates, positional filters, order axes or wildcards, whose
// target is its last step.
func isCase12(q string) bool {
	p, err := xpath.Parse(q)
	if err != nil {
		return false
	}
	return isLinear(p) && targetIsLast(p)
}

// isLinear reports a predicate-free, order-free, filter-free,
// wildcard-free path.
func isLinear(p *xpath.Path) bool {
	for _, s := range p.Steps {
		if len(s.Preds) > 0 || s.Axis.IsOrder() || s.Pos != xpath.PosNone || s.Tag == "*" {
			return false
		}
	}
	return true
}

func targetIsLast(p *xpath.Path) bool {
	tgt, err := p.TargetStep()
	if err != nil || len(p.Steps) == 0 {
		return false
	}
	return tgt == p.Steps[len(p.Steps)-1]
}

// checkPredMonotone runs the metamorphic predicate test on linear
// queries: appending a predicate to the target step only adds a join
// constraint, so the estimate cannot grow, whatever the statistics
// source. Returns a non-empty detail on violation.
func (c *Checker) checkPredMonotone(s *xpathest.Summary, q string, base float64) string {
	p, err := xpath.Parse(q)
	if err != nil || !isLinear(p) {
		return ""
	}
	tgt, err := p.TargetStep()
	if err != nil {
		return ""
	}
	// The added predicate reuses the query's own first tag — present in
	// the document alphabet, deterministic, and frequently selective.
	predTag := p.Steps[0].Tag
	aug := p.Clone()
	augTgt, err := aug.TargetStep()
	if err != nil {
		return ""
	}
	augTgt.Preds = append(augTgt.Preds, &xpath.Path{Steps: []*xpath.Step{{Axis: xpath.Descendant, Tag: predTag}}})
	augEst, err := s.Estimate(aug.String())
	if err != nil {
		return "" // the augmented query may be rejected; nothing to compare
	}
	if c.Inject == InjectOvercountDesc && strings.Contains(aug.String(), "//") && !strings.Contains(q, "//") {
		// Keep the injected-bug simulation coherent: the perturbation
		// applies to whatever the kernel estimates.
		augEst++
	}
	if augEst > base*(1+1e-12)+1e-9 {
		return fmt.Sprintf("estimate %v grew to %v after adding predicate [//%s] to target %q", base, augEst, predTag, tgt.Tag)
	}
	return ""
}
