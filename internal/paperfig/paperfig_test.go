package paperfig

import (
	"testing"

	"xpathest/internal/pathenc"
	"xpathest/internal/xmltree"
)

// TestDocShape pins the Figure 1(a) tree against the counts the
// paper's tables imply — Figure 2(a)'s PathId-Frequency rows sum to
// 4 B (1×p8 + 3×p5), 2 C, 4 D, 3 E, 1 F under 3 A and one Root.
func TestDocShape(t *testing.T) {
	doc := Doc()
	if doc.Root == nil || doc.Root.Tag != "Root" {
		t.Fatalf("root = %+v, want Root", doc.Root)
	}
	want := map[string]int{"Root": 1, "A": 3, "B": 4, "C": 2, "D": 4, "E": 3, "F": 1}
	total := 0
	for tag, n := range want {
		total += n
		if got := doc.TagCount(tag); got != n {
			t.Errorf("TagCount(%s) = %d, want %d", tag, got, n)
		}
	}
	if got := doc.NumElements(); got != total {
		t.Errorf("NumElements = %d, want %d", got, total)
	}
}

// TestDocMatchesXML verifies the builder tree and the serialized XML
// constant describe the same document — tests use them interchangeably.
func TestDocMatchesXML(t *testing.T) {
	parsed, err := xmltree.ParseString(XML)
	if err != nil {
		t.Fatalf("ParseString(XML): %v", err)
	}
	var a, b []string
	flatten(Doc().Root, &a)
	flatten(parsed.Root, &b)
	if len(a) != len(b) {
		t.Fatalf("builder doc has %d nodes, XML has %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: builder %q vs XML %q", i, a[i], b[i])
		}
	}
}

// TestEncodingTableFigure1b pins the four root-to-leaf paths of
// Figure 1(b) in table order.
func TestEncodingTableFigure1b(t *testing.T) {
	lab, err := pathenc.Build(Doc())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Root/A/B/D", "Root/A/B/E", "Root/A/C/E", "Root/A/C/F"}
	if got := lab.Table.NumPaths(); got != len(want) {
		t.Fatalf("NumPaths = %d, want %d", got, len(want))
	}
	for i, w := range want {
		if got := lab.Table.Path(i + 1); got != w {
			t.Errorf("Path(%d) = %q, want %q", i+1, got, w)
		}
	}
}

// flatten records tags in preorder with explicit close markers, so
// structure (not just tag multiset) is compared.
func flatten(n *xmltree.Node, out *[]string) {
	*out = append(*out, n.Tag)
	for _, c := range n.Children {
		flatten(c, out)
	}
	*out = append(*out, "/"+n.Tag)
}
