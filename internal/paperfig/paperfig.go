// Package paperfig reconstructs the running example of the paper —
// the XML instance of Figure 1(a) — so that tests across packages can
// pin the worked examples (Examples 2.1–5.3, Figures 1–5) against the
// published values.
//
// The tree below is derived from the paper's own tables: it reproduces
// exactly the encoding table of Figure 1(b), the path-id table of
// Figure 1(c), the PathId-Frequency table of Figure 2(a), and the
// path-order table for B of Figure 2(b) (one B-with-p5 before C, two
// after C).
package paperfig

import "xpathest/internal/xmltree"

// Doc builds the Figure 1(a) document:
//
//	Root
//	├── A            (p8 = 1100)
//	│   └── B        (p8)        children: D (p5), E (p4)
//	├── A            (p7 = 1011)
//	│   ├── B (p5) → D (p5)
//	│   ├── C (p3) → E (p2), F (p1)
//	│   └── B (p5) → D (p5)
//	└── A            (p6 = 1010)
//	    ├── C (p2) → E (p2)
//	    └── B (p5) → D (p5)
//
// Distinct root-to-leaf paths (encoding table of Figure 1(b)):
//
//	1 Root/A/B/D   2 Root/A/B/E   3 Root/A/C/E   4 Root/A/C/F
func Doc() *xmltree.Document {
	b := xmltree.NewBuilder()
	b.Open("Root")

	b.Open("A") // A1 → p8
	b.Open("B") // B with p8
	b.Leaf("D", "")
	b.Leaf("E", "")
	b.Close() // B
	b.Close() // A1

	b.Open("A") // A2 → p7
	b.Open("B") // before C
	b.Leaf("D", "")
	b.Close()
	b.Open("C") // C with p3
	b.Leaf("E", "")
	b.Leaf("F", "")
	b.Close()
	b.Open("B") // after C
	b.Leaf("D", "")
	b.Close()
	b.Close() // A2

	b.Open("A") // A3 → p6
	b.Open("C") // C with p2
	b.Leaf("E", "")
	b.Close()
	b.Open("B") // after C
	b.Leaf("D", "")
	b.Close()
	b.Close() // A3

	b.Close() // Root
	return b.Document()
}

// XML is the Figure 1(a) document as serialized markup, for tests that
// exercise the parser path.
const XML = `<Root>
  <A><B><D/><E/></B></A>
  <A><B><D/></B><C><E/><F/></C><B><D/></B></A>
  <A><C><E/></C><B><D/></B></A>
</Root>`
