// Package datagen generates the three synthetic datasets the
// experiments run on. The paper evaluates on Shakespeare's plays
// (7.5 MB, 21 distinct tags, 179,690 elements), DBLP (65.2 MB, 31
// tags, 1,711,542 elements) and XMark (20.4 MB, 74 tags, 319,815
// elements, 344 distinct root-to-leaf paths); none of those files is
// available offline, so this package builds deterministic analogues
// that reproduce the structural properties the estimator is sensitive
// to — tag vocabulary, distinct-path counts, depth/width profile and
// sibling-order richness (see the substitution table in DESIGN.md).
//
// All generators are seeded and pure: the same Config always yields
// the same document.
package datagen

import (
	"math/rand"

	"xpathest/internal/xmltree"
)

// Config controls a generator run.
type Config struct {
	// Seed drives all randomness. The same seed reproduces the same
	// document.
	Seed int64

	// Scale multiplies the document size; 1.0 approximates the paper's
	// element counts, the experiment default of 0.125 keeps the full
	// suite fast.
	Scale float64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaled returns max(1, round(n·scale)).
func (c Config) scaled(n int) int {
	v := int(float64(n)*c.scale() + 0.5)
	if v < 1 {
		return 1
	}
	return v
}

// Dataset names a generator, mirroring Table 1.
type Dataset struct {
	Name string
	Gen  func(Config) *xmltree.Document
}

// Datasets returns the paper's three datasets in Table 1 order.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "SSPlays", Gen: SSPlays},
		{Name: "DBLP", Gen: DBLP},
		{Name: "XMark", Gen: XMark},
	}
}

// words provides deterministic filler text so that byte sizes resemble
// the real datasets.
var words = []string{
	"lord", "enter", "exit", "night", "crown", "storm", "sword", "love",
	"blood", "king", "ghost", "witch", "battle", "letter", "ring",
	"castle", "forest", "queen", "fool", "grave", "masque", "throne",
}

func text(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}

// SSPlays builds a Shakespeare-plays analogue: a deep, regular theatre
// structure with exactly the 21 tags of the real collection. At scale
// 1 it holds ~37 plays and ~180k elements over ~40 distinct paths.
func SSPlays(cfg Config) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x55504c415953))
	b := xmltree.NewBuilder()
	b.Open("PLAYS")
	plays := cfg.scaled(37)
	for p := 0; p < plays; p++ {
		b.Open("PLAY")
		b.Leaf("TITLE", text(rng, 4))
		b.Open("FM")
		for i := 0; i < 3; i++ {
			b.Leaf("P", text(rng, 8))
		}
		b.Close()
		b.Open("PERSONAE")
		b.Leaf("TITLE", "Dramatis Personae")
		for i, n := 0, 8+rng.Intn(10); i < n; i++ {
			b.Leaf("PERSONA", text(rng, 3))
		}
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			b.Open("PGROUP")
			for j, m := 0, 2+rng.Intn(3); j < m; j++ {
				b.Leaf("PERSONA", text(rng, 3))
			}
			b.Leaf("GRPDESCR", text(rng, 4))
			b.Close()
		}
		b.Close()
		b.Leaf("SCNDESCR", text(rng, 6))
		b.Leaf("PLAYSUBT", text(rng, 3))
		if rng.Intn(4) == 0 {
			// Inductions mix bare lines, stage directions and full
			// speech blocks (as in The Taming of the Shrew) — extra
			// distinct paths the real collection has.
			b.Open("INDUCT")
			b.Leaf("TITLE", text(rng, 3))
			for i, n := 0, 4+rng.Intn(8); i < n; i++ {
				b.Leaf("LINE", text(rng, 7))
			}
			if rng.Intn(2) == 0 {
				b.Leaf("STAGEDIR", text(rng, 4))
				speechBlock(b, rng)
			}
			b.Close()
		}
		if rng.Intn(3) == 0 {
			b.Open("PROLOGUE")
			b.Leaf("TITLE", "Prologue")
			for i, n := 0, 6+rng.Intn(10); i < n; i++ {
				b.Leaf("LINE", text(rng, 7))
			}
			if rng.Intn(3) == 0 {
				b.Leaf("STAGEDIR", text(rng, 3))
			}
			if rng.Intn(4) == 0 {
				speechBlock(b, rng)
			}
			b.Close()
		}
		for act := 0; act < 5; act++ {
			b.Open("ACT")
			b.Leaf("TITLE", text(rng, 2))
			if rng.Intn(5) == 0 {
				b.Leaf("SUBTITLE", text(rng, 2))
			}
			if rng.Intn(6) == 0 {
				b.Leaf("STAGEDIR", text(rng, 3))
			}
			scenes := 3 + rng.Intn(5)
			for sc := 0; sc < scenes; sc++ {
				b.Open("SCENE")
				b.Leaf("TITLE", text(rng, 3))
				if rng.Intn(2) == 0 {
					b.Leaf("STAGEDIR", text(rng, 4))
				}
				if rng.Intn(6) == 0 {
					b.Leaf("SUBTITLE", text(rng, 2))
				}
				speeches := 15 + rng.Intn(25)
				for sp := 0; sp < speeches; sp++ {
					speechBlock(b, rng)
				}
				b.Close()
			}
			b.Close()
		}
		if rng.Intn(4) == 0 {
			b.Open("EPILOGUE")
			b.Leaf("TITLE", "Epilogue")
			for i, n := 0, 4+rng.Intn(8); i < n; i++ {
				b.Leaf("LINE", text(rng, 7))
			}
			if rng.Intn(3) == 0 {
				b.Leaf("STAGEDIR", text(rng, 3))
			}
			if rng.Intn(4) == 0 {
				speechBlock(b, rng)
			}
			b.Close()
		}
		b.Close()
	}
	b.Close()
	return b.Document()
}

// speechBlock emits one SPEECH with speaker, lines and an optional
// stage direction — shared by scenes, inductions, prologues and
// epilogues.
func speechBlock(b *xmltree.Builder, rng *rand.Rand) {
	b.Open("SPEECH")
	b.Leaf("SPEAKER", text(rng, 1))
	for ln, n := 0, 1+rng.Intn(7); ln < n; ln++ {
		b.Leaf("LINE", text(rng, 7))
	}
	if rng.Intn(5) == 0 {
		b.Leaf("STAGEDIR", text(rng, 3))
	}
	b.Close()
}

// pubFields lists DBLP field tags in conventional document order; the
// presence probability of each field depends on the publication type,
// which yields the wide-but-shallow structure and the rich sibling
// order information the paper highlights for DBLP.
var pubFields = []struct {
	tag  string
	prob map[string]float64 // per publication type; default 0
}{
	{"author", map[string]float64{"article": 1, "inproceedings": 1, "incollection": 1, "book": 0.8, "phdthesis": 1, "mastersthesis": 1, "www": 0.7}},
	{"editor", map[string]float64{"proceedings": 0.9, "book": 0.3}},
	{"title", map[string]float64{"article": 1, "inproceedings": 1, "proceedings": 1, "book": 1, "incollection": 1, "phdthesis": 1, "mastersthesis": 1, "www": 1}},
	{"booktitle", map[string]float64{"inproceedings": 1, "incollection": 0.9, "proceedings": 0.6}},
	{"pages", map[string]float64{"article": 0.9, "inproceedings": 0.95, "incollection": 0.8}},
	{"year", map[string]float64{"article": 1, "inproceedings": 1, "proceedings": 1, "book": 1, "incollection": 1, "phdthesis": 1, "mastersthesis": 1}},
	{"address", map[string]float64{"proceedings": 0.3, "phdthesis": 0.2}},
	{"journal", map[string]float64{"article": 1}},
	{"volume", map[string]float64{"article": 0.9, "proceedings": 0.3, "book": 0.2}},
	{"number", map[string]float64{"article": 0.7}},
	{"month", map[string]float64{"article": 0.2, "phdthesis": 0.3}},
	{"url", map[string]float64{"article": 0.8, "inproceedings": 0.8, "proceedings": 0.7, "book": 0.5, "incollection": 0.6, "www": 1}},
	{"ee", map[string]float64{"article": 0.6, "inproceedings": 0.5}},
	{"cdrom", map[string]float64{"article": 0.05, "inproceedings": 0.08}},
	{"cite", map[string]float64{"article": 0.15, "inproceedings": 0.1, "book": 0.1}},
	{"publisher", map[string]float64{"proceedings": 0.8, "book": 1, "incollection": 0.7}},
	{"note", map[string]float64{"article": 0.05, "www": 0.3}},
	{"crossref", map[string]float64{"inproceedings": 0.9, "incollection": 0.8}},
	{"isbn", map[string]float64{"proceedings": 0.7, "book": 0.9}},
	{"series", map[string]float64{"proceedings": 0.5, "book": 0.4}},
	{"school", map[string]float64{"phdthesis": 1, "mastersthesis": 1}},
	{"chapter", map[string]float64{"incollection": 0.3}},
}

var pubTypes = []struct {
	tag    string
	weight int
}{
	{"article", 35},
	{"inproceedings", 40},
	{"proceedings", 4},
	{"book", 3},
	{"incollection", 6},
	{"phdthesis", 2},
	{"mastersthesis", 1},
	{"www", 9},
}

// DBLP builds a bibliography analogue: one shallow root with a huge
// ordered sibling sequence of publications, 31 distinct tags. At scale
// 1 it holds ~200k publications and ~1.7M elements.
func DBLP(cfg Config) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x44424c50))
	b := xmltree.NewBuilder()
	b.Open("dblp")
	totalWeight := 0
	for _, pt := range pubTypes {
		totalWeight += pt.weight
	}
	pubs := cfg.scaled(200000)
	for i := 0; i < pubs; i++ {
		w := rng.Intn(totalWeight)
		typ := pubTypes[0].tag
		for _, pt := range pubTypes {
			if w < pt.weight {
				typ = pt.tag
				break
			}
			w -= pt.weight
		}
		b.Open(typ)
		for _, f := range pubFields {
			p := f.prob[typ]
			if p == 0 || rng.Float64() >= p {
				continue
			}
			n := 1
			if f.tag == "author" {
				n = 1 + rng.Intn(4)
			} else if f.tag == "cite" {
				n = 1 + rng.Intn(3)
			}
			for k := 0; k < n; k++ {
				b.Leaf(f.tag, text(rng, 2))
			}
		}
		b.Close()
	}
	b.Close()
	return b.Document()
}

// XMark builds an auction-site analogue after the XMark benchmark
// schema: 74 distinct tags and hundreds of distinct root-to-leaf paths
// produced by the recursive description markup
// (parlist/listitem/text/keyword/bold/emph). At scale 1 it holds
// ~320k elements.
func XMark(cfg Config) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x584d41524b))
	g := &xmarkGen{rng: rng, b: xmltree.NewBuilder()}
	b := g.b
	b.Open("site")

	b.Open("regions")
	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	regionWeights := []int{3, 20, 5, 30, 30, 12}
	items := cfg.scaled(4350)
	for ri, region := range regions {
		b.Open(region)
		n := items * regionWeights[ri] / 100
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			g.item()
		}
		b.Close()
	}
	b.Close()

	b.Open("categories")
	cats := cfg.scaled(200)
	for i := 0; i < cats; i++ {
		b.Open("category")
		b.Leaf("name", text(rng, 2))
		g.description()
		b.Close()
	}
	b.Close()

	b.Open("catgraph")
	for i := 0; i < cats; i++ {
		b.Open("edge")
		b.Leaf("from", "category0")
		b.Leaf("to", "category1")
		b.Close()
	}
	b.Close()

	b.Open("people")
	people := cfg.scaled(5100)
	for i := 0; i < people; i++ {
		g.person()
	}
	b.Close()

	b.Open("open_auctions")
	opens := cfg.scaled(2400)
	for i := 0; i < opens; i++ {
		g.openAuction()
	}
	b.Close()

	b.Open("closed_auctions")
	closed := cfg.scaled(1950)
	for i := 0; i < closed; i++ {
		g.closedAuction()
	}
	b.Close()

	b.Close() // site
	return b.Document()
}

type xmarkGen struct {
	rng *rand.Rand
	b   *xmltree.Builder
}

func (g *xmarkGen) item() {
	b, rng := g.b, g.rng
	b.Open("item")
	b.Open("location")
	b.Text(text(rng, 1))
	b.Close()
	b.Leaf("quantity", "1")
	b.Leaf("name", text(rng, 2))
	b.Open("payment")
	b.Text("Creditcard")
	b.Close()
	g.description()
	b.Open("shipping")
	b.Text(text(rng, 2))
	b.Close()
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		b.Leaf("incategory", "")
	}
	if rng.Intn(2) == 0 {
		b.Open("mailbox")
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			b.Open("mail")
			b.Leaf("from", text(rng, 2))
			b.Leaf("to", text(rng, 2))
			b.Leaf("date", "07/04/2026")
			g.textContent(0)
			b.Close()
		}
		b.Close()
	}
	b.Close()
}

// description emits the recursive description markup: either a flat
// text or a parlist of listitems, each again text or parlist.
func (g *xmarkGen) description() {
	g.b.Open("description")
	g.descBody(0)
	g.b.Close()
}

func (g *xmarkGen) descBody(depth int) {
	if depth >= 3 || g.rng.Intn(100) < 70 {
		g.textContent(depth)
		return
	}
	g.b.Open("parlist")
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		g.b.Open("listitem")
		g.descBody(depth + 1)
		g.b.Close()
	}
	g.b.Close()
}

// textContent emits a text element with optional nested inline markup
// (keyword/bold/emph, themselves nestable one level), the source of
// XMark's path diversity.
func (g *xmarkGen) textContent(depth int) {
	b, rng := g.b, g.rng
	b.Open("text")
	b.Text(text(rng, 5))
	if depth < 2 {
		for i, n := 0, rng.Intn(3); i < n; i++ {
			inline := []string{"keyword", "bold", "emph"}[rng.Intn(3)]
			b.Open(inline)
			b.Text(text(rng, 2))
			if depth == 0 && rng.Intn(4) == 0 {
				inner := []string{"keyword", "bold", "emph"}[rng.Intn(3)]
				b.Leaf(inner, text(rng, 1))
			}
			b.Close()
		}
	}
	b.Close()
}

func (g *xmarkGen) person() {
	b, rng := g.b, g.rng
	b.Open("person")
	b.Leaf("name", text(rng, 2))
	b.Leaf("emailaddress", "mailto:x@example.org")
	if rng.Intn(2) == 0 {
		b.Leaf("phone", "+1 555 0100")
	}
	if rng.Intn(3) == 0 {
		b.Open("address")
		b.Leaf("street", text(rng, 2))
		b.Leaf("city", text(rng, 1))
		b.Leaf("country", text(rng, 1))
		b.Leaf("province", text(rng, 1))
		b.Leaf("zipcode", "12345")
		b.Close()
	}
	if rng.Intn(2) == 0 {
		b.Leaf("homepage", "http://example.org")
	}
	if rng.Intn(3) == 0 {
		b.Leaf("creditcard", "1234 5678")
	}
	if rng.Intn(2) == 0 {
		b.Open("profile")
		for i, n := 0, rng.Intn(4); i < n; i++ {
			b.Leaf("interest", "")
		}
		if rng.Intn(2) == 0 {
			b.Leaf("education", text(rng, 1))
		}
		b.Leaf("gender", "x")
		if rng.Intn(2) == 0 {
			b.Leaf("business", "Yes")
		}
		b.Leaf("age", "42")
		b.Close()
	}
	if rng.Intn(3) == 0 {
		b.Open("watches")
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			b.Leaf("watch", "")
		}
		b.Close()
	}
	b.Close()
}

func (g *xmarkGen) openAuction() {
	b, rng := g.b, g.rng
	b.Open("open_auction")
	b.Leaf("initial", "15.00")
	if rng.Intn(2) == 0 {
		b.Leaf("reserve", "30.00")
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		b.Open("bidder")
		b.Leaf("date", "07/04/2026")
		b.Leaf("time", "12:00:00")
		b.Leaf("personref", "")
		b.Leaf("increase", "3.00")
		b.Close()
	}
	b.Leaf("current", "27.00")
	if rng.Intn(3) == 0 {
		b.Leaf("privacy", "Yes")
	}
	b.Leaf("itemref", "")
	b.Open("seller")
	b.Text("person0")
	b.Close()
	g.annotation()
	b.Leaf("quantity", "1")
	b.Open("type")
	b.Text("Regular")
	b.Close()
	b.Open("interval")
	b.Leaf("start", "07/01/2026")
	b.Leaf("end", "08/01/2026")
	b.Close()
	b.Close()
}

func (g *xmarkGen) closedAuction() {
	b, rng := g.b, g.rng
	b.Open("closed_auction")
	b.Open("seller")
	b.Text("person0")
	b.Close()
	b.Open("buyer")
	b.Text("person1")
	b.Close()
	b.Leaf("itemref", "")
	b.Leaf("price", "42.00")
	b.Leaf("date", "07/04/2026")
	b.Leaf("quantity", "1")
	b.Open("type")
	b.Text("Regular")
	b.Close()
	g.annotation()
	_ = rng
	b.Close()
}

func (g *xmarkGen) annotation() {
	b, rng := g.b, g.rng
	b.Open("annotation")
	if rng.Intn(2) == 0 {
		b.Open("author")
		b.Text("person2")
		b.Close()
	}
	g.description()
	b.Leaf("happiness", "7")
	b.Close()
}
