package datagen

import (
	"testing"

	"xpathest/internal/pathenc"
	"xpathest/internal/xmltree"
)

// tagCount returns the number of distinct tags, distinct paths and
// elements of a document.
func profile(doc *xmltree.Document) (tags, paths, elements int) {
	l := pathenc.MustBuild(doc)
	return doc.NumDistinctTags(), l.Table.NumPaths(), doc.NumElements()
}

// TestSSPlaysProfile checks the Table 1 shape for the Shakespeare
// analogue: exactly 21 distinct tags, ~40 distinct paths, ~180k
// elements at scale 1 (tested at scale 0.1 for speed and extrapolated
// linearly within tolerance).
func TestSSPlaysProfile(t *testing.T) {
	doc := SSPlays(Config{Seed: 1, Scale: 0.1})
	tags, paths, elements := profile(doc)
	if tags != 21 {
		t.Errorf("SSPlays distinct tags = %d, want 21 (the real dataset's count)", tags)
	}
	if paths < 25 || paths > 60 {
		t.Errorf("SSPlays distinct paths = %d, want ≈40", paths)
	}
	// Scale 0.1 ≈ 4 plays ≈ 18k elements; allow a broad band.
	if elements < 8000 || elements > 40000 {
		t.Errorf("SSPlays elements at scale 0.1 = %d, want ≈18k", elements)
	}
}

func TestDBLPProfile(t *testing.T) {
	doc := DBLP(Config{Seed: 1, Scale: 0.02})
	tags, paths, elements := profile(doc)
	if tags < 28 || tags > 31 {
		t.Errorf("DBLP distinct tags = %d, want ≈31", tags)
	}
	if paths < 60 || paths > 110 {
		t.Errorf("DBLP distinct paths = %d, want ≈87", paths)
	}
	// Scale 0.02 ≈ 4000 pubs ≈ 34k elements.
	if elements < 15000 || elements > 60000 {
		t.Errorf("DBLP elements at scale 0.02 = %d", elements)
	}
	// Shallow and wide: the root has thousands of children.
	if len(doc.Root.Children) < 3000 {
		t.Errorf("DBLP root fanout = %d, want wide", len(doc.Root.Children))
	}
}

func TestXMarkProfile(t *testing.T) {
	doc := XMark(Config{Seed: 1, Scale: 0.1})
	tags, paths, elements := profile(doc)
	if tags < 65 || tags > 78 {
		t.Errorf("XMark distinct tags = %d, want ≈74", tags)
	}
	if paths < 150 {
		t.Errorf("XMark distinct paths = %d, want hundreds (paper: 344)", paths)
	}
	if elements < 10000 || elements > 80000 {
		t.Errorf("XMark elements at scale 0.1 = %d, want ≈32k", elements)
	}
}

func TestDeterminism(t *testing.T) {
	for _, ds := range Datasets() {
		a := ds.Gen(Config{Seed: 7, Scale: 0.02})
		b := ds.Gen(Config{Seed: 7, Scale: 0.02})
		if a.NumElements() != b.NumElements() {
			t.Errorf("%s: same seed produced %d vs %d elements", ds.Name, a.NumElements(), b.NumElements())
		}
		if !sameShape(a.Root, b.Root) {
			t.Errorf("%s: same seed produced different trees", ds.Name)
		}
		c := ds.Gen(Config{Seed: 8, Scale: 0.02})
		if sameShape(a.Root, c.Root) {
			t.Errorf("%s: different seeds produced identical trees", ds.Name)
		}
	}
}

func sameShape(a, b *xmltree.Node) bool {
	if a.Tag != b.Tag || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !sameShape(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestScaleMonotonicity(t *testing.T) {
	for _, ds := range Datasets() {
		small := ds.Gen(Config{Seed: 3, Scale: 0.01})
		large := ds.Gen(Config{Seed: 3, Scale: 0.05})
		if large.NumElements() <= small.NumElements() {
			t.Errorf("%s: scale 0.05 (%d) not larger than 0.01 (%d)",
				ds.Name, large.NumElements(), small.NumElements())
		}
	}
}

func TestZeroScaleDefaults(t *testing.T) {
	// Scale 0 means 1.0; just check scaled() rather than generating a
	// full-size document.
	c := Config{}
	if c.scaled(100) != 100 {
		t.Fatalf("scaled(100) at zero scale = %d", c.scaled(100))
	}
	c = Config{Scale: 0.5}
	if c.scaled(100) != 50 {
		t.Fatalf("scaled(100) at 0.5 = %d", c.scaled(100))
	}
	if c.scaled(1) != 1 {
		t.Fatalf("scaled(1) = %d, want at least 1", c.scaled(1))
	}
}

func TestDatasetsOrder(t *testing.T) {
	ds := Datasets()
	if len(ds) != 3 || ds[0].Name != "SSPlays" || ds[1].Name != "DBLP" || ds[2].Name != "XMark" {
		t.Fatalf("Datasets() = %v", ds)
	}
}

func BenchmarkSSPlaysScale10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SSPlays(Config{Seed: 1, Scale: 0.1})
	}
}
