package experiments

import (
	"io"
	"time"

	"xpathest/internal/histogram"
	"xpathest/internal/xsketch"
)

// Table1Row is one dataset's characteristics (paper Table 1).
type Table1Row struct {
	Dataset      string
	SizeBytes    int64
	DistinctTags int
	Elements     int
}

// Table1 computes dataset characteristics.
func Table1(envs []*Env) []Table1Row {
	var rows []Table1Row
	for _, e := range envs {
		rows = append(rows, Table1Row{
			Dataset:      e.Name,
			SizeBytes:    e.Doc.Bytes,
			DistinctTags: e.Doc.NumDistinctTags(),
			Elements:     e.Doc.NumElements(),
		})
	}
	return rows
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1. Characteristics of Datasets\n")
	fprintf(w, "%-10s %10s %12s %10s\n", "Dataset", "Size(MB)", "#DistEles", "#Eles")
	for _, r := range rows {
		fprintf(w, "%-10s %10.1f %12d %10d\n",
			r.Dataset, float64(r.SizeBytes)/(1<<20), r.DistinctTags, r.Elements)
	}
}

// Table2Row is one dataset's workload sizes (paper Table 2).
type Table2Row struct {
	Dataset                 string
	Simple, Branch, Total   int
	OrderBranch, OrderTrunk int
	WithOrder               int
}

// Table2 counts the generated workloads.
func Table2(envs []*Env) []Table2Row {
	var rows []Table2Row
	for _, e := range envs {
		w := e.Workload
		rows = append(rows, Table2Row{
			Dataset:     e.Name,
			Simple:      len(w.Simple),
			Branch:      len(w.Branch),
			Total:       w.Total(),
			OrderBranch: len(w.OrderBranch),
			OrderTrunk:  len(w.OrderTrunk),
			WithOrder:   w.TotalOrder(),
		})
	}
	return rows
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fprintf(w, "Table 2. Query Workload\n")
	fprintf(w, "%-10s %8s %8s %8s %12s\n", "Dataset", "Simple", "Branch", "Total", "WithOrder")
	for _, r := range rows {
		fprintf(w, "%-10s %8d %8d %8d %12d\n",
			r.Dataset, r.Simple, r.Branch, r.Total, r.WithOrder)
	}
}

// Table3Row is one dataset's space accounting (paper Table 3).
type Table3Row struct {
	Dataset       string
	DistPaths     int
	PidSizeBytes  int
	DistPids      int
	EncTabBytes   int
	PidTabBytes   int
	BinTreeBytes  int
	TreeSavingPct float64
}

// Table3 computes the space requirements of the encoding table, raw
// path-id table and compressed path-id binary tree.
func Table3(envs []*Env) []Table3Row {
	var rows []Table3Row
	for _, e := range envs {
		pidTab := e.Lab.PidTableSizeBytes()
		tree := e.Tree.SizeBytes()
		saving := 0.0
		if pidTab > 0 {
			saving = 100 * (1 - float64(tree)/float64(pidTab))
		}
		rows = append(rows, Table3Row{
			Dataset:       e.Name,
			DistPaths:     e.Lab.Table.NumPaths(),
			PidSizeBytes:  e.Lab.PidSizeBytes(),
			DistPids:      e.Lab.NumDistinct(),
			EncTabBytes:   e.Lab.Table.SizeBytes(),
			PidTabBytes:   pidTab,
			BinTreeBytes:  tree,
			TreeSavingPct: saving,
		})
	}
	return rows
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fprintf(w, "Table 3. Space Requirement of Encoding Table and Path Id Binary Tree\n")
	fprintf(w, "%-10s %10s %10s %10s %12s %12s %14s %8s\n",
		"Dataset", "#DistPath", "PidSize(B)", "#DistPid", "EncTab(KB)", "PidTab(KB)", "PidBinTree(KB)", "Save%")
	for _, r := range rows {
		fprintf(w, "%-10s %10d %10d %10d %12s %12s %14s %7.1f%%\n",
			r.Dataset, r.DistPaths, r.PidSizeBytes, r.DistPids,
			kb(r.EncTabBytes), kb(r.PidTabBytes), kb(r.BinTreeBytes), r.TreeSavingPct)
	}
}

// Table4Row compares p-histogram construction with XSketch (paper
// Table 4). Histogram sizes are the [variance 14, variance 0] range.
type Table4Row struct {
	Dataset string

	CollectPathTime time.Duration
	PHistoMinBytes  int
	PHistoMaxBytes  int
	PHistoBuildTime time.Duration

	XSketchBudget    int
	XSketchBytes     int
	XSketchBuildTime time.Duration
}

// Table4 measures construction cost for path statistics. The XSketch
// budget matches the paper's protocol: "approximately the same as the
// total memory size of the encoding table, path id binary tree and
// p-histogram" (at variance 0).
func Table4(envs []*Env) []Table4Row {
	var rows []Table4Row
	for _, e := range envs {
		n := e.Lab.NumDistinct()

		t0 := time.Now()
		psMax := histogram.BuildPSet(e.Tables.Freq, n, 0)
		buildTime := time.Since(t0)
		psMin := histogram.BuildPSet(e.Tables.Freq, n, 14)

		budget := e.FixedSizeBytes() + psMax.SizeBytes()
		t1 := time.Now()
		sk := xsketch.Build(e.Doc, budget)
		skTime := time.Since(t1)

		rows = append(rows, Table4Row{
			Dataset:          e.Name,
			CollectPathTime:  e.CollectPathTime,
			PHistoMinBytes:   psMin.SizeBytes(),
			PHistoMaxBytes:   psMax.SizeBytes(),
			PHistoBuildTime:  buildTime,
			XSketchBudget:    budget,
			XSketchBytes:     sk.SizeBytes(),
			XSketchBuildTime: skTime,
		})
	}
	return rows
}

// WriteTable4 renders Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fprintf(w, "Table 4. Construction Time for Queries without Order Axes\n")
	fprintf(w, "%-10s %14s %20s %14s | %14s %14s %14s\n",
		"Dataset", "CollectPath", "P-Histo Size(KB)", "P-Histo Time",
		"XSk Budget(KB)", "XSk Size(KB)", "XSk Time")
	for _, r := range rows {
		fprintf(w, "%-10s %14s %9s ~ %8s %14s | %14s %14s %14s\n",
			r.Dataset, r.CollectPathTime.Round(time.Millisecond),
			kb(r.PHistoMinBytes), kb(r.PHistoMaxBytes),
			r.PHistoBuildTime.Round(time.Microsecond),
			kb(r.XSketchBudget), kb(r.XSketchBytes),
			r.XSketchBuildTime.Round(time.Millisecond))
	}
}

// Table5Row is the order-statistics construction cost (paper Table 5).
type Table5Row struct {
	Dataset          string
	CollectOrderTime time.Duration
	OHistoMinBytes   int
	OHistoMaxBytes   int
	OHistoBuildTime  time.Duration
}

// Table5 measures o-histogram construction. Sizes are the
// [variance 14, variance 0] range.
func Table5(envs []*Env) []Table5Row {
	var rows []Table5Row
	for _, e := range envs {
		n := e.Lab.NumDistinct()
		ps := histogram.BuildPSet(e.Tables.Freq, n, 0)

		t0 := time.Now()
		osMax := histogram.BuildOSet(e.Tables.Order, ps, n, 0)
		buildTime := time.Since(t0)
		osMin := histogram.BuildOSet(e.Tables.Order, ps, n, 14)

		rows = append(rows, Table5Row{
			Dataset:          e.Name,
			CollectOrderTime: e.CollectOrderTime,
			OHistoMinBytes:   osMin.SizeBytes(),
			OHistoMaxBytes:   osMax.SizeBytes(),
			OHistoBuildTime:  buildTime,
		})
	}
	return rows
}

// WriteTable5 renders Table 5.
func WriteTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "Table 5. Construction Time for Order Data\n")
	fprintf(w, "%-10s %16s %20s %16s\n",
		"Dataset", "CollectOrder", "O-Histo Size(KB)", "O-Histo Time")
	for _, r := range rows {
		fprintf(w, "%-10s %16s %9s ~ %8s %16s\n",
			r.Dataset, r.CollectOrderTime.Round(time.Millisecond),
			kb(r.OHistoMinBytes), kb(r.OHistoMaxBytes),
			r.OHistoBuildTime.Round(time.Microsecond))
	}
}
