package experiments

import (
	"fmt"
	"io"
	"sort"
)

// runner executes one named experiment against prepared environments.
type runner struct {
	name string
	desc string
	run  func(envs []*Env, w io.Writer)
}

var runners = []runner{
	{"table1", "dataset characteristics", func(envs []*Env, w io.Writer) {
		WriteTable1(w, Table1(envs))
	}},
	{"table2", "query workload sizes", func(envs []*Env, w io.Writer) {
		WriteTable2(w, Table2(envs))
	}},
	{"table3", "encoding table / pid binary tree space", func(envs []*Env, w io.Writer) {
		WriteTable3(w, Table3(envs))
	}},
	{"table4", "construction cost vs XSketch (path data)", func(envs []*Env, w io.Writer) {
		WriteTable4(w, Table4(envs))
	}},
	{"table5", "construction cost (order data)", func(envs []*Env, w io.Writer) {
		WriteTable5(w, Table5(envs))
	}},
	{"fig9", "histogram memory vs variance", func(envs []*Env, w io.Writer) {
		WriteFigure9(w, Figure9(envs))
	}},
	{"fig10", "no-order estimation error", func(envs []*Env, w io.Writer) {
		WriteFigure10(w, Figure10(envs))
	}},
	{"fig11", "p-histogram vs XSketch accuracy", func(envs []*Env, w io.Writer) {
		WriteFigure11(w, Figure11(envs))
	}},
	{"fig12", "order-query error, target in branch", func(envs []*Env, w io.Writer) {
		WriteFigureOrder(w, "Figure 12. Estimation Error of Queries with Order Axes (Branch Part)", Figure12(envs))
	}},
	{"fig13", "order-query error, target in trunk", func(envs []*Env, w io.Writer) {
		WriteFigureOrder(w, "Figure 13. Estimation Error of Queries with Order Axes (Trunk Part)", Figure13(envs))
	}},
	{"ablation", "effect of Eq (2) correction and Eq (5) bound", func(envs []*Env, w io.Writer) {
		WriteAblation(w, Ablation(envs))
	}},
	{"poshist", "p-histogram vs position histogram (Section 8)", func(envs []*Env, w io.Writer) {
		WritePosHist(w, PosHist(envs))
	}},
}

// Names lists the available experiment names in run order.
func Names() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.name
	}
	return out
}

// Describe returns a name → description map.
func Describe() map[string]string {
	out := make(map[string]string, len(runners))
	for _, r := range runners {
		out[r.name] = r.desc
	}
	return out
}

// Run executes the named experiment ("all" runs everything) against
// already-prepared environments, writing the formatted result to w.
func Run(name string, envs []*Env, w io.Writer) error {
	if name == "all" {
		for _, r := range runners {
			r.run(envs, w)
			fprintf(w, "\n")
		}
		return nil
	}
	for _, r := range runners {
		if r.name == name {
			r.run(envs, w)
			return nil
		}
	}
	valid := Names()
	sort.Strings(valid)
	return fmt.Errorf("experiments: unknown experiment %q (valid: %v, or \"all\")", name, valid)
}
