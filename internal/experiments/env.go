// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7): dataset characteristics (Table 1),
// workload sizes (Table 2), summary-space accounting (Table 3),
// construction costs against XSketch (Tables 4 and 5), histogram
// memory sweeps (Figure 9), and estimation-accuracy sweeps without and
// with order axes (Figures 10–13).
//
// Absolute numbers differ from the paper — the datasets are synthetic
// analogues and the machine is different — but every qualitative
// relationship the paper reports is asserted by the package's tests
// and recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"xpathest/internal/core"
	"xpathest/internal/datagen"
	"xpathest/internal/histogram"
	"xpathest/internal/pathenc"
	"xpathest/internal/pidtree"
	"xpathest/internal/stats"
	"xpathest/internal/workload"
	"xpathest/internal/xmltree"
)

// Options configures an experiment run.
type Options struct {
	// Seed drives dataset generation and workloads.
	Seed int64

	// Scale multiplies dataset sizes; 0.125 (the default) keeps the
	// full suite at laptop scale, 1.0 approximates the paper's sizes.
	Scale float64

	// NumSimple and NumBranch are workload generation attempts
	// (paper: 4000 each). Zero means 4000.
	NumSimple, NumBranch int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.125
	}
	if o.NumSimple == 0 {
		o.NumSimple = 4000
	}
	if o.NumBranch == 0 {
		o.NumBranch = 4000
	}
	return o
}

// Env is one dataset prepared for experiments: the document, its
// labeling and exact statistics, the compressed path-id tree, the
// query workload, and the collection timings that feed Tables 4–5.
type Env struct {
	Name     string
	Doc      *xmltree.Document
	Lab      *pathenc.Labeling
	Tables   *stats.Tables
	Tree     *pidtree.Tree
	Workload *workload.Workload

	CollectPathTime  time.Duration
	CollectOrderTime time.Duration
}

// Setup generates and prepares all three datasets.
func Setup(opts Options) []*Env {
	opts = opts.withDefaults()
	var envs []*Env
	for _, ds := range datagen.Datasets() {
		envs = append(envs, SetupOne(ds, opts))
	}
	return envs
}

// SetupOne prepares a single dataset.
func SetupOne(ds datagen.Dataset, opts Options) *Env {
	opts = opts.withDefaults()
	doc := ds.Gen(datagen.Config{Seed: opts.Seed, Scale: opts.Scale})

	t0 := time.Now()
	lab := pathenc.MustBuild(doc)
	freq := stats.CollectFreq(doc, lab)
	pathTime := time.Since(t0)

	t1 := time.Now()
	order := stats.CollectOrder(doc, lab)
	orderTime := time.Since(t1)

	tree := pidtree.MustBuild(lab.Distinct())
	w := workload.Generate(doc, lab, workload.Config{
		Seed:      opts.Seed + 1,
		NumSimple: opts.NumSimple,
		NumBranch: opts.NumBranch,
	})
	return &Env{
		Name:             ds.Name,
		Doc:              doc,
		Lab:              lab,
		Tables:           &stats.Tables{Labeling: lab, Freq: freq, Order: order},
		Tree:             tree,
		Workload:         w,
		CollectPathTime:  pathTime,
		CollectOrderTime: orderTime,
	}
}

// Histograms builds the two synopses at the given variance thresholds.
func (e *Env) Histograms(pVar, oVar float64) (*histogram.PSet, *histogram.OSet) {
	n := e.Lab.NumDistinct()
	ps := histogram.BuildPSet(e.Tables.Freq, n, pVar)
	os := histogram.BuildOSet(e.Tables.Order, ps, n, oVar)
	return ps, os
}

// Estimator builds an estimator over histogram synopses at the given
// variances.
func (e *Env) Estimator(pVar, oVar float64) *core.Estimator {
	ps, os := e.Histograms(pVar, oVar)
	return core.New(e.Lab, core.HistogramSource{P: ps, O: os})
}

// FixedSizeBytes is the incompressible floor of the proposed method:
// encoding table plus path-id binary tree (the paper's Figure 11
// x-axis adds these to the p-histogram size).
func (e *Env) FixedSizeBytes() int {
	return e.Lab.Table.SizeBytes() + e.Tree.SizeBytes()
}

// estimateFn abstracts the estimators (core, xsketch, poshist) for
// error measurement. Implementations must be safe for concurrent use —
// all three estimators are immutable after construction.
type estimateFn func(q workload.Query) (float64, error)

// relErr computes the mean relative error of fn over qs, fanning the
// queries out over the CPUs; skipped queries (fn errors) are counted
// separately.
func relErr(fn estimateFn, qs []workload.Query) (mean float64, skipped int) {
	if len(qs) == 0 {
		return 0, 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	type partial struct {
		sum     float64
		n, skip int
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &parts[w]
			for i := w; i < len(qs); i += workers {
				got, err := fn(qs[i])
				if err != nil {
					p.skip++
					continue
				}
				e := got - float64(qs[i].Exact)
				if e < 0 {
					e = -e
				}
				p.sum += e / float64(qs[i].Exact)
				p.n++
			}
		}(w)
	}
	wg.Wait()
	sum, n := 0.0, 0
	for _, p := range parts {
		sum += p.sum
		n += p.n
		skipped += p.skip
	}
	if n == 0 {
		return 0, skipped
	}
	return sum / float64(n), skipped
}

// kb renders bytes as KB with two decimals.
func kb(n int) string { return fmt.Sprintf("%.2f", float64(n)/1024) }

// fprintf writes and ignores errors (experiment output is best-effort
// terminal text).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
