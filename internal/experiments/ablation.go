package experiments

import (
	"io"

	"xpathest/internal/core"
	"xpathest/internal/histogram"
	"xpathest/internal/workload"
)

// AblationRow quantifies two design choices the paper motivates but
// does not isolate:
//
//   - the Equation (2) branch correction, against the raw path-join
//     sum f_Q(n) (which Theorem 4.1 makes exact for trunk targets but
//     Example 4.3 shows over-estimates branch targets);
//   - the Equation (5) min() bound for trunk targets of order
//     queries, against using the plain no-order estimate S_Q(n).
type AblationRow struct {
	Dataset string

	// Branch-query error with and without the Equation (2) correction
	// (exact statistics, so the correction is the only difference).
	BranchErrEq2 float64
	BranchErrRaw float64

	// Trunk-target order-query error with Equation (5) and with the
	// ablated upper bound S_Q(n) alone.
	OrderTrunkErrEq5   float64
	OrderTrunkErrNoMin float64

	// No-order workload error with variance-bounded buckets (the
	// paper's Algorithm 1, threshold 2) and with equal-count buckets
	// of identical memory — ablating the Section 6 variance control.
	BucketErrVariance  float64
	BucketErrEquiCount float64
}

// Ablation measures both ablations on exact (variance 0) statistics.
func Ablation(envs []*Env) []AblationRow {
	var rows []AblationRow
	for _, e := range envs {
		est := core.New(e.Lab, core.TableSource{Tables: e.Tables})

		eq2, _ := relErr(func(q workload.Query) (float64, error) {
			return est.Estimate(q.Path)
		}, e.Workload.Branch)
		raw, _ := relErr(func(q workload.Query) (float64, error) {
			return est.RawJoinEstimate(q.Path)
		}, e.Workload.Branch)

		eq5, _ := relErr(func(q workload.Query) (float64, error) {
			return est.Estimate(q.Path)
		}, e.Workload.OrderTrunk)
		// Ablated Equation (5): drop the order constraint entirely and
		// estimate the counterpart query without order axes — the
		// S_Q(n) upper bound on its own.
		noMin, _ := relErr(func(q workload.Query) (float64, error) {
			return est.RawJoinEstimate(q.Path)
		}, e.Workload.OrderTrunk)

		// Bucket-shape ablation: variance threshold 2 vs equal-count
		// buckets at the same per-tag bucket counts (same memory).
		n := e.Lab.NumDistinct()
		psVar := histogram.BuildPSet(e.Tables.Freq, n, 2)
		psEqui := histogram.BuildPSetEquiCount(e.Tables.Freq, n, psVar)
		all := append(append([]workload.Query{}, e.Workload.Simple...), e.Workload.Branch...)
		estVar := core.New(e.Lab, core.HistogramSource{P: psVar})
		estEqui := core.New(e.Lab, core.HistogramSource{P: psEqui})
		bv, _ := relErr(func(q workload.Query) (float64, error) {
			return estVar.Estimate(q.Path)
		}, all)
		be, _ := relErr(func(q workload.Query) (float64, error) {
			return estEqui.Estimate(q.Path)
		}, all)

		rows = append(rows, AblationRow{
			Dataset:            e.Name,
			BranchErrEq2:       eq2,
			BranchErrRaw:       raw,
			OrderTrunkErrEq5:   eq5,
			OrderTrunkErrNoMin: noMin,
			BucketErrVariance:  bv,
			BucketErrEquiCount: be,
		})
	}
	return rows
}

// WriteAblation renders the ablation table.
func WriteAblation(w io.Writer, rows []AblationRow) {
	fprintf(w, "Ablation. Eq (2) correction, Eq (5) bound (exact statistics), and bucket shape (variance 2 vs equal-count at matched memory)\n")
	fprintf(w, "%-10s %12s %12s %14s %14s %12s %12s\n",
		"Dataset", "branch Eq2", "branch raw", "ord-trunk Eq5", "ord-trunk noMin", "bucket var", "bucket equi")
	for _, r := range rows {
		fprintf(w, "%-10s %12.4f %12.4f %14.4f %14.4f %12.4f %12.4f\n",
			r.Dataset, r.BranchErrEq2, r.BranchErrRaw, r.OrderTrunkErrEq5, r.OrderTrunkErrNoMin,
			r.BucketErrVariance, r.BucketErrEquiCount)
	}
}
