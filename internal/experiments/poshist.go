package experiments

import (
	"io"

	"xpathest/internal/core"
	"xpathest/internal/interval"
	"xpathest/internal/poshist"
	"xpathest/internal/workload"
	"xpathest/internal/xpath"
)

// PosHistRow compares the p-histogram method against the position
// histogram of Wu/Patel/Jagadish (the paper's Section 8 discussion) on
// the no-order workload, split by whether a query uses any child axis.
// The paper's critique — position histograms capture containment only
// and cannot distinguish parent-child from ancestor-descendant — should
// show up as a gap on the child-axis population and not on the
// descendant-only one.
type PosHistRow struct {
	Dataset string

	GridSize     int
	PosHistBytes int
	PHistoBytes  int

	// Mean relative error on queries that contain at least one child
	// axis, and on queries built from descendant axes only.
	ChildErrPHisto  float64
	ChildErrPosHist float64
	DescErrPHisto   float64
	DescErrPosHist  float64

	ChildQueries, DescQueries int
}

// hasChildAxis reports whether any step after the first uses the child
// axis (the leading step's axis encodes absoluteness, not a structural
// join).
func hasChildAxis(p *xpath.Path) bool {
	var rec func(q *xpath.Path, outer bool) bool
	rec = func(q *xpath.Path, outer bool) bool {
		for i, s := range q.Steps {
			if s.Axis == xpath.Child && !(outer && i == 0) {
				return true
			}
			for _, pred := range s.Preds {
				if rec(pred, false) {
					return true
				}
			}
		}
		return false
	}
	return rec(p, true)
}

// PosHist runs the comparison. The grid size is chosen per dataset so
// the position histogram's memory roughly matches the p-histogram's
// at variance 0 (both sides get comparable budgets, mirroring the
// Figure 11 protocol); the grid is capped at 16×16 because position-
// histogram estimation cost is quadratic in occupied cells. Each
// population is subsampled to at most posHistMaxQueries queries —
// enough for stable means on this extension experiment.
func PosHist(envs []*Env) []PosHistRow {
	const (
		maxGrid           = 16
		posHistMaxQueries = 800
	)
	var rows []PosHistRow
	for _, e := range envs {
		ps, _ := e.Histograms(0, 0)
		est := core.New(e.Lab, core.HistogramSource{P: ps})

		// Grow the grid until the position histogram reaches the
		// p-histogram budget (or the cost cap).
		il := interval.Build(e.Doc)
		g := 2
		ph := poshist.Build(e.Doc, il, g)
		for ph.SizeBytes() < ps.SizeBytes() && g < maxGrid {
			g *= 2
			ph = poshist.Build(e.Doc, il, g)
		}

		var child, desc []workload.Query
		for _, q := range append(append([]workload.Query{}, e.Workload.Simple...), e.Workload.Branch...) {
			if hasChildAxis(q.Path) {
				if len(child) < posHistMaxQueries {
					child = append(child, q)
				}
			} else if len(desc) < posHistMaxQueries {
				desc = append(desc, q)
			}
		}

		ours := func(q workload.Query) (float64, error) { return est.Estimate(q.Path) }
		theirs := func(q workload.Query) (float64, error) { return ph.Estimate(q.Path) }
		cp, _ := relErr(ours, child)
		cq, _ := relErr(theirs, child)
		dp, _ := relErr(ours, desc)
		dq, _ := relErr(theirs, desc)

		rows = append(rows, PosHistRow{
			Dataset:         e.Name,
			GridSize:        g,
			PosHistBytes:    ph.SizeBytes(),
			PHistoBytes:     ps.SizeBytes(),
			ChildErrPHisto:  cp,
			ChildErrPosHist: cq,
			DescErrPHisto:   dp,
			DescErrPosHist:  dq,
			ChildQueries:    len(child),
			DescQueries:     len(desc),
		})
	}
	return rows
}

// WritePosHist renders the comparison table.
func WritePosHist(w io.Writer, rows []PosHistRow) {
	fprintf(w, "Extension. P-Histogram vs Position Histogram (Section 8 critique, no-order workload)\n")
	fprintf(w, "%-10s %6s %12s %12s | %10s %10s | %10s %10s\n",
		"Dataset", "grid", "pos KB", "p-histo KB", "child p-h", "child pos", "desc p-h", "desc pos")
	for _, r := range rows {
		fprintf(w, "%-10s %6d %12s %12s | %10.4f %10.4f | %10.4f %10.4f\n",
			r.Dataset, r.GridSize, kb(r.PosHistBytes), kb(r.PHistoBytes),
			r.ChildErrPHisto, r.ChildErrPosHist, r.DescErrPHisto, r.DescErrPosHist)
	}
}
