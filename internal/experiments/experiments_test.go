package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// testEnvs builds small environments once for all tests in the
// package; tiny scale keeps the suite fast while preserving shapes.
var (
	envOnce sync.Once
	envs    []*Env
)

func testEnvs(t *testing.T) []*Env {
	t.Helper()
	envOnce.Do(func() {
		envs = Setup(Options{Seed: 42, Scale: 0.02, NumSimple: 400, NumBranch: 400})
	})
	return envs
}

func TestSetupShapes(t *testing.T) {
	es := testEnvs(t)
	if len(es) != 3 {
		t.Fatalf("got %d environments", len(es))
	}
	names := []string{"SSPlays", "DBLP", "XMark"}
	for i, e := range es {
		if e.Name != names[i] {
			t.Errorf("env %d = %s, want %s", i, e.Name, names[i])
		}
		if e.Doc.NumElements() == 0 || e.Lab.NumDistinct() == 0 {
			t.Errorf("%s: empty environment", e.Name)
		}
		if e.Workload.Total() == 0 {
			t.Errorf("%s: empty workload", e.Name)
		}
		if e.CollectPathTime <= 0 || e.CollectOrderTime <= 0 {
			t.Errorf("%s: missing collection timings", e.Name)
		}
	}
}

func TestTable1MatchesDocuments(t *testing.T) {
	es := testEnvs(t)
	rows := Table1(es)
	for i, r := range rows {
		if r.Elements != es[i].Doc.NumElements() {
			t.Errorf("%s: elements %d vs %d", r.Dataset, r.Elements, es[i].Doc.NumElements())
		}
		if r.DistinctTags != es[i].Doc.NumDistinctTags() {
			t.Errorf("%s: tags mismatch", r.Dataset)
		}
	}
	// Paper shape: DBLP is the largest dataset; XMark has the most
	// distinct tags.
	if !(rows[1].Elements > rows[0].Elements && rows[1].Elements > rows[2].Elements) {
		t.Errorf("DBLP should be largest: %+v", rows)
	}
	if !(rows[2].DistinctTags > rows[0].DistinctTags && rows[2].DistinctTags > rows[1].DistinctTags) {
		t.Errorf("XMark should have most tags: %+v", rows)
	}
}

func TestTable3Shapes(t *testing.T) {
	es := testEnvs(t)
	rows := Table3(es)
	// XMark has the most distinct paths and pids (paper: 344 / 6811),
	// and the binary tree must beat the raw pid table there.
	if !(rows[2].DistPaths > rows[1].DistPaths && rows[1].DistPaths > rows[0].DistPaths) {
		t.Errorf("distinct path ordering wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.PidSizeBytes != (r.DistPaths+7)/8 {
			t.Errorf("%s: pid size %d for %d paths", r.Dataset, r.PidSizeBytes, r.DistPaths)
		}
		if r.PidTabBytes != r.DistPids*r.PidSizeBytes {
			t.Errorf("%s: pid table bytes inconsistent", r.Dataset)
		}
	}
	// The compression saving is width-dependent: at paper scale XMark
	// saves ~78%; at this tiny test scale the shape to check is that
	// XMark benefits most and positively (the paper's SSPlays/DBLP
	// rows show essentially no saving for small pid tables).
	if rows[2].TreeSavingPct <= 10 {
		t.Errorf("XMark binary-tree saving = %.1f%%, want positive", rows[2].TreeSavingPct)
	}
	if rows[2].TreeSavingPct <= rows[0].TreeSavingPct-1 || rows[2].TreeSavingPct <= rows[1].TreeSavingPct-1 {
		t.Errorf("XMark should benefit most from compression: %+v", rows)
	}
}

func TestTable4And5Shapes(t *testing.T) {
	es := testEnvs(t)
	t4 := Table4(es)
	for _, r := range t4 {
		if r.PHistoMinBytes > r.PHistoMaxBytes {
			t.Errorf("%s: min p-histo %d > max %d", r.Dataset, r.PHistoMinBytes, r.PHistoMaxBytes)
		}
		// Paper shape: p-histogram construction is near-instant, far
		// below the XSketch greedy refinement at matched budget.
		if r.PHistoBuildTime > r.XSketchBuildTime {
			t.Errorf("%s: p-histo build (%v) slower than XSketch (%v)",
				r.Dataset, r.PHistoBuildTime, r.XSketchBuildTime)
		}
	}
	t5 := Table5(es)
	for _, r := range t5 {
		if r.OHistoMinBytes > r.OHistoMaxBytes {
			t.Errorf("%s: o-histo sizes inverted", r.Dataset)
		}
		if r.OHistoBuildTime <= 0 {
			t.Errorf("%s: no o-histo build time", r.Dataset)
		}
	}
}

func TestFigure9Monotone(t *testing.T) {
	es := testEnvs(t)
	for _, s := range Figure9(es) {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].PHistoBytes > s.Points[i-1].PHistoBytes {
				t.Errorf("%s: p-histo memory grew with variance at %v", s.Dataset, s.Points[i].Variance)
			}
			if s.Points[i].OHistoBytes > s.Points[i-1].OHistoBytes {
				t.Errorf("%s: o-histo memory grew with variance at %v", s.Dataset, s.Points[i].Variance)
			}
		}
	}
}

func TestFigure10Shapes(t *testing.T) {
	es := testEnvs(t)
	for _, s := range Figure10(es) {
		last := s.Points[len(s.Points)-1] // variance 0
		if last.PVariance != 14 {
			// VarianceSweep runs 0..14; variance 0 is the first point.
		}
		first := s.Points[0]
		if first.PVariance != 0 {
			t.Fatalf("%s: first point variance %v", s.Dataset, first.PVariance)
		}
		// Paper shape: at variance 0 simple queries are estimated
		// exactly (Theorem 4.1). The theorem's premise silently
		// requires a non-recursive schema; XMark's parlist/listitem
		// and nested inline markup violate it, so a small residual
		// error remains there (recorded in EXPERIMENTS.md).
		limit := 1e-6
		if s.Dataset == "XMark" {
			limit = 0.25
		}
		if first.ErrSimple > limit {
			t.Errorf("%s: simple-query error at variance 0 = %v, want ≤ %v", s.Dataset, first.ErrSimple, limit)
		}
		// ...and branch error is low (paper: < 7%); the synthetic
		// analogues allow a little more slack.
		if first.ErrBranch > 0.25 {
			t.Errorf("%s: branch-query error at variance 0 = %v, want small", s.Dataset, first.ErrBranch)
		}
		// Coarser histograms must not (substantially) beat exact ones
		// on the full workload.
		lastAll := s.Points[len(s.Points)-1].ErrAll
		if first.ErrAll > lastAll+1e-9 && first.ErrAll > 1.05*lastAll {
			t.Errorf("%s: error at variance 0 (%v) above variance 14 (%v)", s.Dataset, first.ErrAll, lastAll)
		}
	}
}

func TestFigure12And13Shapes(t *testing.T) {
	es := testEnvs(t)
	f12 := Figure12(es)
	f13 := Figure13(es)
	for fi, series := range [][]OrderErrSeries{f12, f13} {
		for _, s := range series {
			for _, p := range s.Points {
				if p.Skipped > 0 {
					t.Errorf("fig1%d %s: %d queries skipped at p=%v o=%v",
						2+fi, s.Dataset, p.Skipped, p.PVariance, p.OVariance)
				}
				if p.Err < 0 {
					t.Errorf("fig1%d %s: negative error", 2+fi, s.Dataset)
				}
			}
		}
	}
	// Paper shape: at p-variance 0 and o-variance 0 the branch-target
	// error is small (< 6% in the paper; slack for synthetic data).
	for _, s := range f12 {
		if len(s.Points) == 0 {
			continue // dataset may have produced no such queries at tiny scale
		}
		var best *OrderErrPoint
		for i := range s.Points {
			p := &s.Points[i]
			if p.PVariance == 0 && p.OVariance == 0 {
				best = p
			}
		}
		if best == nil {
			t.Fatalf("%s: missing (0,0) point", s.Dataset)
		}
		if best.Err > 0.30 {
			t.Errorf("%s: order-branch error at exact summaries = %v, want small", s.Dataset, best.Err)
		}
	}
}

func TestRunAllAndNames(t *testing.T) {
	es := testEnvs(t)
	var buf bytes.Buffer
	if err := Run("table1", es, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("output missing header: %q", buf.String())
	}
	if err := Run("nope", es, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) != 12 {
		t.Fatalf("Names() = %v", Names())
	}
	if len(Describe()) != 12 {
		t.Fatal("Describe size mismatch")
	}
}

func TestAblationShapes(t *testing.T) {
	es := testEnvs(t)
	rows := Ablation(es)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The Equation (2) correction must not hurt on average, and on
		// at least one dataset it must strictly help (Example 4.3's
		// over-estimation is systematic).
		if r.BranchErrEq2 > r.BranchErrRaw+1e-9 {
			t.Errorf("%s: Eq2 branch error %v worse than raw %v", r.Dataset, r.BranchErrEq2, r.BranchErrRaw)
		}
		// The Equation (5) bound can only tighten the no-order
		// upper bound for trunk targets of order queries.
		if len(es) > 0 && r.OrderTrunkErrEq5 > r.OrderTrunkErrNoMin+1e-9 {
			t.Errorf("%s: Eq5 error %v worse than unbounded %v", r.Dataset, r.OrderTrunkErrEq5, r.OrderTrunkErrNoMin)
		}
	}
	helped := false
	for _, r := range rows {
		if r.BranchErrEq2 < r.BranchErrRaw-1e-9 {
			helped = true
		}
	}
	if !helped {
		t.Error("Eq (2) correction helped on no dataset")
	}
}

func TestPosHistShapes(t *testing.T) {
	es := testEnvs(t)
	rows := PosHist(es)
	for _, r := range rows {
		if r.ChildQueries == 0 || r.DescQueries == 0 {
			t.Logf("%s: populations child=%d desc=%d", r.Dataset, r.ChildQueries, r.DescQueries)
		}
		// The Section 8 critique: on child-axis queries the position
		// histogram must be (much) worse than the p-histogram, which
		// distinguishes parent-child through the encoding table.
		if r.ChildQueries > 20 && r.ChildErrPosHist < r.ChildErrPHisto {
			t.Errorf("%s: position histogram beat the p-histogram on child-axis queries (%v vs %v)",
				r.Dataset, r.ChildErrPosHist, r.ChildErrPHisto)
		}
	}
}

// TestRunAllRenders drives every experiment renderer once over the
// tiny environments and checks each emits its header.
func TestRunAllRenders(t *testing.T) {
	es := testEnvs(t)
	var buf bytes.Buffer
	if err := Run("all", es, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, header := range []string{
		"Table 1.", "Table 2.", "Table 3.", "Table 4.", "Table 5.",
		"Figure 9.", "Figure 10.", "Figure 11.", "Figure 12.", "Figure 13.",
		"Ablation.", "Extension. P-Histogram vs Position Histogram",
	} {
		if !strings.Contains(out, header) {
			t.Errorf("Run(all) output missing %q", header)
		}
	}
	// Every dataset appears in every section.
	for _, name := range []string{"SSPlays", "DBLP", "XMark"} {
		if c := strings.Count(out, name); c < 12 {
			t.Errorf("dataset %s appears only %d times", name, c)
		}
	}
}
