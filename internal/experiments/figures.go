package experiments

import (
	"io"

	"xpathest/internal/core"
	"xpathest/internal/workload"
	"xpathest/internal/xsketch"
)

// VarianceSweep is the intra-bucket variance grid of Figure 9.
var VarianceSweep = []float64{0, 1, 2, 4, 6, 8, 10, 12, 14}

// PVarianceGrid is the p-histogram variance grid of Figures 12–13.
var PVarianceGrid = []float64{0, 1, 5, 10}

// Fig9Point is one point of Figure 9: histogram memory at a variance.
type Fig9Point struct {
	Variance    float64
	PHistoBytes int
	OHistoBytes int
}

// Fig9Series is one dataset's memory curves.
type Fig9Series struct {
	Dataset string
	Points  []Fig9Point
}

// Figure9 sweeps the intra-bucket variance and records p- and
// o-histogram memory usage.
func Figure9(envs []*Env) []Fig9Series {
	var out []Fig9Series
	for _, e := range envs {
		s := Fig9Series{Dataset: e.Name}
		for _, v := range VarianceSweep {
			ps, os := e.Histograms(v, v)
			s.Points = append(s.Points, Fig9Point{
				Variance:    v,
				PHistoBytes: ps.SizeBytes(),
				OHistoBytes: os.SizeBytes(),
			})
		}
		out = append(out, s)
	}
	return out
}

// WriteFigure9 renders the Figure 9 series.
func WriteFigure9(w io.Writer, series []Fig9Series) {
	fprintf(w, "Figure 9. P-Histogram and O-Histogram Memory Usage\n")
	for _, s := range series {
		fprintf(w, "[%s]\n%10s %14s %14s\n", s.Dataset, "Variance", "P-Histo(KB)", "O-Histo(KB)")
		for _, p := range s.Points {
			fprintf(w, "%10.0f %14s %14s\n", p.Variance, kb(p.PHistoBytes), kb(p.OHistoBytes))
		}
	}
}

// Fig10Point is one point of Figure 10: no-order estimation error at a
// p-histogram memory level.
type Fig10Point struct {
	PVariance   float64
	PHistoBytes int
	ErrSimple   float64
	ErrBranch   float64
	ErrAll      float64
}

// Fig10Series is one dataset's accuracy curve.
type Fig10Series struct {
	Dataset string
	Points  []Fig10Point
}

// Figure10 sweeps the p-histogram variance and measures the relative
// error of simple, branch and all no-order queries.
func Figure10(envs []*Env) []Fig10Series {
	var out []Fig10Series
	for _, e := range envs {
		s := Fig10Series{Dataset: e.Name}
		for _, v := range VarianceSweep {
			ps, _ := e.Histograms(v, 0)
			est := core.New(e.Lab, core.HistogramSource{P: ps})
			fn := func(q workload.Query) (float64, error) { return est.Estimate(q.Path) }
			es, _ := relErr(fn, e.Workload.Simple)
			eb, _ := relErr(fn, e.Workload.Branch)
			all := append(append([]workload.Query{}, e.Workload.Simple...), e.Workload.Branch...)
			ea, _ := relErr(fn, all)
			s.Points = append(s.Points, Fig10Point{
				PVariance:   v,
				PHistoBytes: ps.SizeBytes(),
				ErrSimple:   es,
				ErrBranch:   eb,
				ErrAll:      ea,
			})
		}
		out = append(out, s)
	}
	return out
}

// WriteFigure10 renders the Figure 10 series.
func WriteFigure10(w io.Writer, series []Fig10Series) {
	fprintf(w, "Figure 10. Estimation Error of Queries without Order Axes\n")
	for _, s := range series {
		fprintf(w, "[%s]\n%6s %12s %10s %10s %10s\n",
			s.Dataset, "p-var", "P-Mem(KB)", "simple", "branch", "all")
		for _, p := range s.Points {
			fprintf(w, "%6.0f %12s %10.4f %10.4f %10.4f\n",
				p.PVariance, kb(p.PHistoBytes), p.ErrSimple, p.ErrBranch, p.ErrAll)
		}
	}
}

// Fig11Point compares the proposed method with XSketch at matched
// total memory.
type Fig11Point struct {
	PVariance    float64
	TotalBytes   int // encoding table + pid binary tree + p-histogram
	ErrPHisto    float64
	ErrXSketch   float64
	XSketchBytes int
}

// Fig11Series is one dataset's comparison curve.
type Fig11Series struct {
	Dataset string
	Points  []Fig11Point
}

// Figure11 compares against XSketch on the no-order workload: for each
// p-variance level, an XSketch synopsis is built with a budget equal
// to our total memory at that level, and both estimate the same
// queries.
func Figure11(envs []*Env) []Fig11Series {
	var out []Fig11Series
	for _, e := range envs {
		s := Fig11Series{Dataset: e.Name}
		all := append(append([]workload.Query{}, e.Workload.Simple...), e.Workload.Branch...)
		for _, v := range []float64{14, 8, 4, 1, 0} { // increasing memory
			ps, _ := e.Histograms(v, 0)
			total := e.FixedSizeBytes() + ps.SizeBytes()
			est := core.New(e.Lab, core.HistogramSource{P: ps})
			ours, _ := relErr(func(q workload.Query) (float64, error) {
				return est.Estimate(q.Path)
			}, all)

			sk := xsketch.Build(e.Doc, total)
			theirs, _ := relErr(func(q workload.Query) (float64, error) {
				return sk.Estimate(q.Path)
			}, all)

			s.Points = append(s.Points, Fig11Point{
				PVariance:    v,
				TotalBytes:   total,
				ErrPHisto:    ours,
				ErrXSketch:   theirs,
				XSketchBytes: sk.SizeBytes(),
			})
		}
		out = append(out, s)
	}
	return out
}

// WriteFigure11 renders the Figure 11 series.
func WriteFigure11(w io.Writer, series []Fig11Series) {
	fprintf(w, "Figure 11. P-Histogram Vs XSketch\n")
	for _, s := range series {
		fprintf(w, "[%s]\n%6s %14s %10s %10s %14s\n",
			s.Dataset, "p-var", "TotalMem(KB)", "p-histo", "xsketch", "XSk Size(KB)")
		for _, p := range s.Points {
			fprintf(w, "%6.0f %14s %10.4f %10.4f %14s\n",
				p.PVariance, kb(p.TotalBytes), p.ErrPHisto, p.ErrXSketch, kb(p.XSketchBytes))
		}
	}
}

// OrderErrPoint is one point of Figures 12–13.
type OrderErrPoint struct {
	PVariance   float64
	OVariance   float64
	OHistoBytes int
	Err         float64
	Skipped     int
}

// OrderErrSeries is one dataset's order-query accuracy grid.
type OrderErrSeries struct {
	Dataset string
	Points  []OrderErrPoint
}

// OVarianceSweep is the o-histogram variance grid of Figures 12–13.
var OVarianceSweep = []float64{14, 8, 4, 2, 1, 0} // increasing memory

// figureOrder sweeps (p-variance, o-variance) and measures order-query
// error on the given population.
func figureOrder(envs []*Env, pick func(*Env) []workload.Query) []OrderErrSeries {
	var out []OrderErrSeries
	for _, e := range envs {
		s := OrderErrSeries{Dataset: e.Name}
		qs := pick(e)
		for _, pv := range PVarianceGrid {
			for _, ov := range OVarianceSweep {
				ps, os := e.Histograms(pv, ov)
				est := core.New(e.Lab, core.HistogramSource{P: ps, O: os})
				err, skipped := relErr(func(q workload.Query) (float64, error) {
					return est.Estimate(q.Path)
				}, qs)
				s.Points = append(s.Points, OrderErrPoint{
					PVariance:   pv,
					OVariance:   ov,
					OHistoBytes: os.SizeBytes(),
					Err:         err,
					Skipped:     skipped,
				})
			}
		}
		out = append(out, s)
	}
	return out
}

// Figure12 measures order-query error with targets in branch parts.
func Figure12(envs []*Env) []OrderErrSeries {
	return figureOrder(envs, func(e *Env) []workload.Query { return e.Workload.OrderBranch })
}

// Figure13 measures order-query error with targets in trunk parts.
func Figure13(envs []*Env) []OrderErrSeries {
	return figureOrder(envs, func(e *Env) []workload.Query { return e.Workload.OrderTrunk })
}

// WriteFigureOrder renders a Figure 12/13 series.
func WriteFigureOrder(w io.Writer, title string, series []OrderErrSeries) {
	fprintf(w, "%s\n", title)
	for _, s := range series {
		fprintf(w, "[%s]\n%6s %6s %14s %10s\n", s.Dataset, "p-var", "o-var", "O-Mem(KB)", "error")
		for _, p := range s.Points {
			fprintf(w, "%6.0f %6.0f %14s %10.4f\n",
				p.PVariance, p.OVariance, kb(p.OHistoBytes), p.Err)
		}
	}
}
