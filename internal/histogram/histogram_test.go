package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xpathest/internal/bitset"
	"xpathest/internal/paperfig"
	"xpathest/internal/stats"
	"xpathest/internal/xmltree"
)

func pid(s string) *bitset.Bitset { return bitset.MustFromString(s) }

// figure7Entries is the pathid-frequency list of Figure 7:
// (p2,2) (p3,2) (p1,5) (p5,7).
func figure7Entries() []stats.PidFreq {
	return []stats.PidFreq{
		{Pid: pid("0010"), Freq: 2}, // p2
		{Pid: pid("0011"), Freq: 2}, // p3
		{Pid: pid("0001"), Freq: 5}, // p1
		{Pid: pid("1000"), Freq: 7}, // p5
	}
}

// TestFigure7VarianceZero pins P-Histogram2 of Figure 7: with
// threshold 0 the buckets are {p2,p3}@2, {p1}@5, {p5}@7.
func TestFigure7VarianceZero(t *testing.T) {
	h := BuildP("X", figure7Entries(), 0)
	if h.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d, want 3", h.NumBuckets())
	}
	wantAvg := []float64{2, 5, 7}
	wantSize := []int{2, 1, 1}
	for i, b := range h.Buckets {
		if b.AvgFreq != wantAvg[i] {
			t.Errorf("bucket %d avg = %v, want %v", i, b.AvgFreq, wantAvg[i])
		}
		if len(b.Pids) != wantSize[i] {
			t.Errorf("bucket %d holds %d pids, want %d", i, len(b.Pids), wantSize[i])
		}
	}
	// Lookups return exact frequencies at threshold 0.
	for _, e := range figure7Entries() {
		if got := h.Freq(e.Pid); got != e.Freq {
			t.Errorf("Freq(%s) = %v, want %v", e.Pid, got, e.Freq)
		}
	}
}

// TestFigure7VarianceOne pins P-Histogram1 of Figure 7: with
// threshold 1 the buckets are {p2,p3}@2 (v=0) and {p1,p5}@6 (v=1).
func TestFigure7VarianceOne(t *testing.T) {
	h := BuildP("X", figure7Entries(), 1)
	if h.NumBuckets() != 2 {
		t.Fatalf("NumBuckets = %d, want 2: %+v", h.NumBuckets(), h.Buckets)
	}
	if h.Buckets[0].AvgFreq != 2 || len(h.Buckets[0].Pids) != 2 {
		t.Errorf("bucket 0 = %+v, want {p2,p3}@2", h.Buckets[0])
	}
	if h.Buckets[1].AvgFreq != 6 || len(h.Buckets[1].Pids) != 2 {
		t.Errorf("bucket 1 = %+v, want {p1,p5}@6", h.Buckets[1])
	}
	if got := h.Freq(pid("0001")); got != 6 {
		t.Errorf("Freq(p1) = %v, want bucket average 6", got)
	}
	if v := CheckPVariance(h, figure7Entries()); v > 1 {
		t.Errorf("intra-bucket variance %v exceeds threshold 1", v)
	}
}

func TestFreqUnknownPid(t *testing.T) {
	h := BuildP("X", figure7Entries(), 0)
	if got := h.Freq(pid("0100")); got != 0 {
		t.Fatalf("Freq of absent pid = %v, want 0", got)
	}
}

func TestBuildPEmptyAndNegative(t *testing.T) {
	h := BuildP("X", nil, 0)
	if h.NumBuckets() != 0 {
		t.Fatalf("empty input produced %d buckets", h.NumBuckets())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative threshold did not panic")
		}
	}()
	BuildP("X", nil, -1)
}

func TestPidOrderSortedByFrequency(t *testing.T) {
	h := BuildP("X", figure7Entries(), 5)
	order := h.PidOrder()
	if len(order) != 4 {
		t.Fatalf("PidOrder has %d pids", len(order))
	}
	freqOf := map[string]float64{}
	for _, e := range figure7Entries() {
		freqOf[e.Pid.Key()] = e.Freq
	}
	for i := 1; i < len(order); i++ {
		if freqOf[order[i-1].Key()] > freqOf[order[i].Key()] {
			t.Fatalf("PidOrder not frequency-sorted at %d", i)
		}
	}
}

// buildOrderGrid constructs an OrderTable directly through the stats
// collector by building a document whose sibling structure realizes
// the wanted cells... too indirect; instead use the collector on the
// paper document for realistic tables and a handcrafted one here.
func figure1Tables(t testing.TB) *stats.Tables {
	t.Helper()
	return stats.Collect(paperfig.Doc(), nil)
}

func TestBuildOFigure1B(t *testing.T) {
	tbs := figure1Tables(t)
	bTable := tbs.Order.Table("B")
	ph := BuildP("B", tbs.Freq.Entries("B"), 0)
	h := BuildO(bTable, ph.PidOrder(), 0)

	// B's order table has a single pid column (p5) and rows for
	// sibling tags B and C in both regions.
	if len(h.Cols) != 1 || h.Cols[0].String() != "1000" {
		t.Fatalf("Cols = %v, want [1000]", h.Cols)
	}
	if len(h.Rows) != 4 {
		t.Fatalf("Rows = %v, want 4 rows (B,C × 2 regions)", h.Rows)
	}

	p5 := pid("1000")
	if got := h.Get(stats.Before, p5, "C"); got != 1 {
		t.Errorf("Get(before, p5, C) = %v, want 1", got)
	}
	if got := h.Get(stats.After, p5, "C"); got != 2 {
		t.Errorf("Get(after, p5, C) = %v, want 2", got)
	}
	if got := h.Get(stats.Before, p5, "Z"); got != 0 {
		t.Errorf("Get of unknown tag = %v, want 0", got)
	}
	if got := h.Get(stats.Before, pid("1100"), "C"); got != 0 {
		t.Errorf("Get of unknown pid = %v, want 0", got)
	}
	if v := CheckOVariance(h, bTable); v != 0 {
		t.Errorf("variance at threshold 0 = %v", v)
	}
}

// TestBuildOBoxGrowth exercises the cell→row→box extension on a
// handcrafted sibling structure:
//
//	parent type 1 (×2): x a b   → x before a, x before b
//	parent type 2 (×4): a x b   → x after a and before b
//
// x has one pid; the grid is
//
//	            col p(x)
//	before a        2
//	before b        6
//	after  a        4
//
// With threshold 2 the run {2} cannot absorb 6 (variance 2.83), so
// buckets split; with a large threshold everything merges into one
// column box of avg 4.
func TestBuildOBoxGrowth(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Open("r")
	for i := 0; i < 2; i++ {
		b.Open("p").Leaf("x", "").Leaf("a", "").Leaf("b", "").Close()
	}
	for i := 0; i < 4; i++ {
		b.Open("p").Leaf("a", "").Leaf("x", "").Leaf("b", "").Close()
	}
	b.Close()
	doc := b.Document()
	tbs := stats.Collect(doc, nil)
	xt := tbs.Order.Table("x")
	if xt == nil {
		t.Fatal("no order table for x")
	}
	ph := BuildP("x", tbs.Freq.Entries("x"), 0)

	// Exact values first.
	xpid := tbs.Freq.Entries("x")[0].Pid
	if got := xt.Get(stats.Before, xpid, "a"); got != 2 {
		t.Fatalf("before a = %v, want 2", got)
	}
	if got := xt.Get(stats.Before, xpid, "b"); got != 6 {
		t.Fatalf("before b = %v, want 6", got)
	}
	if got := xt.Get(stats.After, xpid, "a"); got != 4 {
		t.Fatalf("after a = %v, want 4", got)
	}

	tight := BuildO(xt, ph.PidOrder(), 0)
	if tight.NumBuckets() != 3 {
		t.Fatalf("threshold 0: %d buckets, want 3", tight.NumBuckets())
	}
	for _, c := range []struct {
		region stats.Region
		tag    string
		want   float64
	}{{stats.Before, "a", 2}, {stats.Before, "b", 6}, {stats.After, "a", 4}} {
		if got := tight.Get(c.region, xpid, c.tag); got != c.want {
			t.Errorf("threshold 0: Get(%v,%s) = %v, want %v", c.region, c.tag, got, c.want)
		}
	}

	loose := BuildO(xt, ph.PidOrder(), 10)
	if loose.NumBuckets() != 1 {
		t.Fatalf("threshold 10: %d buckets, want 1: %+v", loose.NumBuckets(), loose.Buckets)
	}
	if got := loose.Buckets[0].Avg; got != 4 {
		t.Fatalf("merged avg = %v, want (2+6+4)/3 = 4", got)
	}
	if v := CheckOVariance(loose, xt); v > 10 {
		t.Fatalf("variance %v exceeds 10", v)
	}
}

func TestBuildONegativeThresholdPanics(t *testing.T) {
	tbs := figure1Tables(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative threshold did not panic")
		}
	}()
	BuildO(tbs.Order.Table("B"), nil, -0.5)
}

func TestPSetAndOSet(t *testing.T) {
	tbs := figure1Tables(t)
	n := tbs.Labeling.NumDistinct()
	ps := BuildPSet(tbs.Freq, n, 0)
	if got := len(ps.Tags()); got != 7 {
		t.Fatalf("PSet covers %d tags, want 7", got)
	}
	if ps.Histogram("B") == nil || ps.Histogram("nope") != nil {
		t.Fatal("PSet.Histogram lookup broken")
	}
	if len(ps.Entries("B")) != 2 {
		t.Fatalf("PSet.Entries(B) = %v", ps.Entries("B"))
	}
	if ps.Entries("nope") != nil {
		t.Fatal("PSet.Entries of unknown tag should be nil")
	}
	if ps.SizeBytes() <= 0 {
		t.Fatal("PSet size must be positive")
	}

	os := BuildOSet(tbs.Order, ps, n, 0)
	if os.Histogram("B") == nil {
		t.Fatal("OSet missing B")
	}
	if got := os.Get("B", stats.After, pid("1000"), "C"); got != 2 {
		t.Fatalf("OSet.Get = %v, want 2", got)
	}
	if got := os.Get("nope", stats.After, pid("1000"), "C"); got != 0 {
		t.Fatalf("OSet.Get unknown tag = %v, want 0", got)
	}
	if os.SizeBytes() <= 0 {
		t.Fatal("OSet size must be positive")
	}
}

// TestMemoryDecreasesWithVariance checks the Figure 9 shape: histogram
// memory is non-increasing in the variance threshold.
func TestMemoryDecreasesWithVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := randomDoc(rng, 600)
	tbs := stats.Collect(doc, nil)
	n := tbs.Labeling.NumDistinct()

	prevP, prevO := math.MaxInt, math.MaxInt
	for _, v := range []float64{0, 1, 2, 4, 8, 14} {
		ps := BuildPSet(tbs.Freq, n, v)
		os := BuildOSet(tbs.Order, ps, n, v)
		if ps.SizeBytes() > prevP {
			t.Fatalf("p-histogram memory grew at variance %v: %d > %d", v, ps.SizeBytes(), prevP)
		}
		if os.SizeBytes() > prevO {
			t.Fatalf("o-histogram memory grew at variance %v: %d > %d", v, os.SizeBytes(), prevO)
		}
		prevP, prevO = ps.SizeBytes(), os.SizeBytes()
	}
}

func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	tags := []string{"a", "b", "c", "d", "e"}
	b := xmltree.NewBuilder()
	n := 1
	b.Open("root")
	var grow func(depth int)
	grow = func(depth int) {
		kids := rng.Intn(6)
		for i := 0; i < kids && n < maxNodes; i++ {
			n++
			b.Open(tags[rng.Intn(len(tags))])
			if depth < 5 {
				grow(depth + 1)
			}
			b.Close()
		}
	}
	grow(0)
	b.Close()
	return b.Document()
}

// Property: p-histogram construction respects the variance bound, and
// at threshold 0 lookups are exact and frequency mass is preserved.
func TestQuickPHistogramInvariants(t *testing.T) {
	f := func(seed int64, tv uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(200))
		tbs := stats.Collect(doc, nil)
		threshold := float64(tv % 8)
		for _, tag := range tbs.Freq.Tags() {
			entries := tbs.Freq.Entries(tag)
			h := BuildP(tag, entries, threshold)
			if v := CheckPVariance(h, entries); v > threshold+1e-9 {
				return false
			}
			// Every pid must be found, and buckets must partition.
			seen := map[string]bool{}
			for _, b := range h.Buckets {
				for _, p := range b.Pids {
					if seen[p.Key()] {
						return false
					}
					seen[p.Key()] = true
				}
			}
			if len(seen) != len(entries) {
				return false
			}
			if threshold == 0 {
				for _, e := range entries {
					if h.Freq(e.Pid) != e.Freq {
						return false
					}
				}
			}
			// Mass within each bucket is preserved (avg × count).
			exact := map[string]float64{}
			for _, e := range entries {
				exact[e.Pid.Key()] = e.Freq
			}
			for _, b := range h.Buckets {
				mass := 0.0
				for _, p := range b.Pids {
					mass += exact[p.Key()]
				}
				if math.Abs(mass-b.AvgFreq*float64(len(b.Pids))) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: o-histogram buckets are disjoint, cover every non-empty
// cell, respect the variance bound, and at threshold 0 lookups are
// exact.
func TestQuickOHistogramInvariants(t *testing.T) {
	f := func(seed int64, tv uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(200))
		tbs := stats.Collect(doc, nil)
		threshold := float64(tv % 6)
		ps := BuildPSet(tbs.Freq, tbs.Labeling.NumDistinct(), 0)
		for _, tag := range tbs.Order.Tags() {
			table := tbs.Order.Table(tag)
			var order []*bitset.Bitset
			if ph := ps.Histogram(tag); ph != nil {
				order = ph.PidOrder()
			}
			h := BuildO(table, order, threshold)
			if v := CheckOVariance(h, table); v > threshold+1e-9 {
				return false
			}
			// Disjointness.
			for i, a := range h.Buckets {
				for _, b := range h.Buckets[i+1:] {
					if a.Col1 <= b.Col2 && b.Col1 <= a.Col2 &&
						a.Row1 <= b.Row2 && b.Row1 <= a.Row2 {
						return false
					}
				}
			}
			// Coverage of all non-empty cells, exactness at 0.
			for _, c := range table.Cells() {
				got := h.Get(c.Region, c.Pid, c.SibTag)
				if got == 0 {
					return false
				}
				if threshold == 0 && got != c.Count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildPSet(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	doc := randomDoc(rng, 2000)
	tbs := stats.Collect(doc, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildPSet(tbs.Freq, tbs.Labeling.NumDistinct(), 1)
	}
}

func BenchmarkBuildOSet(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	doc := randomDoc(rng, 2000)
	tbs := stats.Collect(doc, nil)
	ps := BuildPSet(tbs.Freq, tbs.Labeling.NumDistinct(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildOSet(tbs.Order, ps, tbs.Labeling.NumDistinct(), 1)
	}
}

func TestBuildPEquiCount(t *testing.T) {
	entries := figure7Entries()
	h := BuildPEquiCount("X", entries, 2)
	if h.NumBuckets() != 2 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	// Two buckets of two pids each over sorted {2,2,5,7}.
	if h.Buckets[0].AvgFreq != 2 || h.Buckets[1].AvgFreq != 6 {
		t.Fatalf("averages = %v, %v", h.Buckets[0].AvgFreq, h.Buckets[1].AvgFreq)
	}
	// Every pid resolves; mass preserved per bucket.
	total := 0.0
	for _, e := range entries {
		total += h.Freq(e.Pid)
	}
	if total != 16 {
		t.Fatalf("mass = %v, want 16", total)
	}
	// One bucket collapses to plain averaging.
	h1 := BuildPEquiCount("X", entries, 1)
	if h1.NumBuckets() != 1 || h1.Buckets[0].AvgFreq != 4 {
		t.Fatalf("single bucket = %+v", h1.Buckets)
	}
	// More buckets than pids clamps.
	h9 := BuildPEquiCount("X", entries, 9)
	if h9.NumBuckets() != 4 {
		t.Fatalf("clamped buckets = %d", h9.NumBuckets())
	}
	// Empty input.
	if BuildPEquiCount("X", nil, 3).NumBuckets() != 0 {
		t.Fatal("empty input produced buckets")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("0 buckets accepted")
		}
	}()
	BuildPEquiCount("X", entries, 0)
}

func TestBuildPSetEquiCountMatchesMemory(t *testing.T) {
	tbs := figure1Tables(t)
	n := tbs.Labeling.NumDistinct()
	ref := BuildPSet(tbs.Freq, n, 2)
	equi := BuildPSetEquiCount(tbs.Freq, n, ref)
	if equi.SizeBytes() != ref.SizeBytes() {
		t.Fatalf("memory differs: equi %d vs ref %d", equi.SizeBytes(), ref.SizeBytes())
	}
	for _, tag := range ref.Tags() {
		if equi.Histogram(tag).NumBuckets() != ref.Histogram(tag).NumBuckets() {
			t.Fatalf("%s: bucket counts differ", tag)
		}
	}
}
