package histogram

import (
	"testing"

	"xpathest/internal/pathenc"
	"xpathest/internal/stats"
	"xpathest/internal/xmltree"
)

func buildSets(t *testing.T, s string) (*stats.Tables, int, *PSet, *OSet) {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := pathenc.Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	tb := stats.Collect(doc, lab)
	n := lab.NumDistinct()
	ps := BuildPSet(tb.Freq, n, 0.5)
	return tb, n, ps, BuildOSet(tb.Order, ps, n, 0.5)
}

// TestWithUpdates pins the copy-on-write contract of the incremental
// maintenance path: clean tags keep their histogram *instance*, dirty
// tags are substituted, nil-mapped tags disappear.
func TestWithUpdates(t *testing.T) {
	tb, n, ps, os := buildSets(t, `<r><a></a><b></b><a></a><c></c></r>`)

	// No rebuilt tags: every instance carries over.
	same := ps.WithUpdates(n, nil)
	for _, tag := range ps.Tags() {
		if same.Histogram(tag) != ps.Histogram(tag) {
			t.Errorf("clean tag %s got a new p-histogram instance", tag)
		}
	}

	// Substitute a's p-histogram, drop c entirely.
	rebuilt := BuildPSet(tb.Freq, n, 0.5).Histogram("a")
	ps2 := ps.WithUpdates(n, map[string]*PHistogram{"a": rebuilt, "c": nil})
	if ps2.Histogram("a") != rebuilt {
		t.Error("dirty tag a kept its old p-histogram")
	}
	if ps2.Histogram("c") != nil {
		t.Error("nil-mapped tag c survived")
	}
	if ps2.Histogram("b") != ps.Histogram("b") {
		t.Error("clean tag b got a new p-histogram instance")
	}
	if got, want := len(ps2.Tags()), len(ps.Tags())-1; got != want {
		t.Errorf("%d tags after update, want %d", got, want)
	}

	// The OSet counterpart.
	os2 := os.WithUpdates(n, map[string]*OHistogram{"a": nil})
	if os2.Histogram("a") != nil {
		t.Error("nil-mapped tag a survived in the o-set")
	}
	for _, tag := range os2.Tags() {
		if os2.Histogram(tag) != os.Histogram(tag) {
			t.Errorf("clean tag %s got a new o-histogram instance", tag)
		}
	}
	fresh := BuildOSet(tb.Order, ps, n, 0.5)
	var anyTag string
	for _, tag := range os.Tags() {
		anyTag = tag
		break
	}
	if anyTag != "" {
		os3 := os.WithUpdates(n, map[string]*OHistogram{anyTag: fresh.Histogram(anyTag)})
		if os3.Histogram(anyTag) != fresh.Histogram(anyTag) {
			t.Errorf("dirty tag %s kept its old o-histogram", anyTag)
		}
	}
}
