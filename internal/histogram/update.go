package histogram

// Copy-on-write set assembly for the incremental maintenance path
// (package delta): after an edit, only the tags whose statistics
// actually changed get their histogram re-run through Algorithm 1/2;
// every untouched tag keeps its existing histogram *instance*, so its
// serialized bytes — and every estimate drawn from it — are identical
// to the pre-edit summary's by construction, not by re-derivation.

// WithUpdates returns a new PSet that keeps every per-tag histogram of
// s except those named in rebuilt: a non-nil replacement histogram
// substitutes the tag's, a nil one drops the tag (it no longer occurs
// in the document). numDistinctPids is the edited document's
// distinct-pid count (it sets pid-reference width in the cost model).
func (s *PSet) WithUpdates(numDistinctPids int, rebuilt map[string]*PHistogram) *PSet {
	out := &PSet{
		Threshold:       s.Threshold,
		byTag:           make(map[string]*PHistogram, len(s.byTag)+len(rebuilt)),
		numDistinctPids: numDistinctPids,
	}
	for tag, h := range s.byTag {
		if _, dirty := rebuilt[tag]; !dirty {
			out.byTag[tag] = h
		}
	}
	for tag, h := range rebuilt {
		if h != nil {
			out.byTag[tag] = h
		}
	}
	return out
}

// WithUpdates is the OSet counterpart of (*PSet).WithUpdates: reuse
// every clean per-tag o-histogram instance, substitute the rebuilt
// ones, drop the tags mapped to nil.
func (s *OSet) WithUpdates(numDistinctPids int, rebuilt map[string]*OHistogram) *OSet {
	out := &OSet{
		Threshold:       s.Threshold,
		byTag:           make(map[string]*OHistogram, len(s.byTag)+len(rebuilt)),
		numDistinctPids: numDistinctPids,
	}
	for tag, h := range s.byTag {
		if _, dirty := rebuilt[tag]; !dirty {
			out.byTag[tag] = h
		}
	}
	for tag, h := range rebuilt {
		if h != nil {
			out.byTag[tag] = h
		}
	}
	return out
}
