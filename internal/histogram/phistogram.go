// Package histogram implements the two synopsis structures of
// Section 6 of the paper:
//
//   - the p-histogram, summarizing one tag's PathId-Frequency entries
//     into buckets of path ids sharing an average frequency
//     (Algorithm 1);
//   - the o-histogram, summarizing one tag's path-order table into
//     rectangular buckets over the sorted (path id × sibling tag) grid
//     (Algorithm 2).
//
// Both use the intra-bucket frequency variance
//
//	v_b = sqrt( Σ (f_i − avg)² / k )
//
// to bound data skew inside a bucket: construction never lets v_b
// exceed the caller-chosen threshold, so a threshold of 0 stores exact
// frequencies (the right-most data points of Figures 9–13).
package histogram

import (
	"context"
	"fmt"
	"math"
	"sort"

	"xpathest/internal/bitset"
	"xpathest/internal/guard"
	"xpathest/internal/stats"
)

// PBucket is one bucket of a p-histogram: a set of path ids and their
// average frequency.
type PBucket struct {
	Pids    []*bitset.Bitset
	AvgFreq float64
}

// PHistogram summarizes the PathId-Frequency entries of one tag.
type PHistogram struct {
	Tag     string
	Buckets []PBucket

	lookup    map[string]int         // pid key -> bucket index
	lookupPtr map[*bitset.Bitset]int // identity-keyed mirror for interned pids
	order     []*bitset.Bitset
}

// variance computes the paper's intra-bucket frequency variance
// (a root-mean-square deviation) incrementally from the running sum,
// sum of squares and count.
func variance(sum, sumSq float64, k int) float64 {
	if k <= 1 {
		return 0
	}
	n := float64(k)
	avg := sum / n
	v := sumSq/n - avg*avg
	if v < 0 { // floating point guard
		v = 0
	}
	return math.Sqrt(v)
}

// BuildP runs Algorithm 1: sort the (pid, frequency) list by frequency,
// then repeatedly grow a bucket with the longest prefix whose variance
// stays within the threshold. The threshold must be non-negative.
func BuildP(tag string, entries []stats.PidFreq, threshold float64) *PHistogram {
	if threshold < 0 {
		//lint:ignore panicpolicy documented precondition on an in-process build parameter, validated at the root API by SummaryOptions; never reachable from untrusted input
		panic(fmt.Sprintf("histogram: negative variance threshold %v", threshold))
	}
	sorted := make([]stats.PidFreq, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Freq != sorted[j].Freq {
			return sorted[i].Freq < sorted[j].Freq
		}
		// Tie-break on bit sequence for determinism.
		return sorted[i].Pid.String() < sorted[j].Pid.String()
	})

	h := &PHistogram{
		Tag:       tag,
		lookup:    make(map[string]int, len(sorted)),
		lookupPtr: make(map[*bitset.Bitset]int, len(sorted)),
	}
	i := 0
	for i < len(sorted) {
		var (
			sum, sumSq float64
			pids       []*bitset.Bitset
		)
		// Grow the bucket while the variance allows. The first element
		// always fits (variance of a singleton is 0).
		j := i
		for j < len(sorted) {
			f := sorted[j].Freq
			if v := variance(sum+f, sumSq+f*f, j-i+1); v > threshold {
				break
			}
			sum += f
			sumSq += f * f
			pids = append(pids, sorted[j].Pid)
			j++
		}
		b := PBucket{Pids: pids, AvgFreq: sum / float64(len(pids))}
		for _, p := range pids {
			h.lookup[p.Key()] = len(h.Buckets)
			h.lookupPtr[p] = len(h.Buckets)
		}
		h.Buckets = append(h.Buckets, b)
		i = j
	}
	for _, e := range sorted {
		h.order = append(h.order, e.Pid)
	}
	return h
}

// BuildPEquiCount builds a p-histogram with numBuckets equal-count
// buckets over the frequency-sorted list, ignoring the intra-bucket
// variance entirely. It exists to ablate the paper's Section 6 design
// choice ("In order to reduce the effect of data skewness in the
// buckets, we use the intra-bucket frequency variance to control the
// histogram construction"): at matched memory, variance-bounded
// buckets should estimate skewed tags better.
func BuildPEquiCount(tag string, entries []stats.PidFreq, numBuckets int) *PHistogram {
	if numBuckets < 1 {
		//lint:ignore panicpolicy documented precondition on an in-process build parameter, validated at the root API by SummaryOptions; never reachable from untrusted input
		panic(fmt.Sprintf("histogram: %d buckets", numBuckets))
	}
	sorted := make([]stats.PidFreq, len(entries))
	copy(sorted, entries)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Freq != sorted[j].Freq {
			return sorted[i].Freq < sorted[j].Freq
		}
		return sorted[i].Pid.String() < sorted[j].Pid.String()
	})
	h := &PHistogram{
		Tag:       tag,
		lookup:    make(map[string]int, len(sorted)),
		lookupPtr: make(map[*bitset.Bitset]int, len(sorted)),
	}
	if len(sorted) == 0 {
		return h
	}
	if numBuckets > len(sorted) {
		numBuckets = len(sorted)
	}
	per := (len(sorted) + numBuckets - 1) / numBuckets
	for i := 0; i < len(sorted); i += per {
		j := i + per
		if j > len(sorted) {
			j = len(sorted)
		}
		var sum float64
		var pids []*bitset.Bitset
		for _, e := range sorted[i:j] {
			sum += e.Freq
			pids = append(pids, e.Pid)
			h.lookup[e.Pid.Key()] = len(h.Buckets)
			h.lookupPtr[e.Pid] = len(h.Buckets)
			h.order = append(h.order, e.Pid)
		}
		h.Buckets = append(h.Buckets, PBucket{Pids: pids, AvgFreq: sum / float64(j-i)})
	}
	return h
}

// BuildPSetEquiCount builds an equal-count p-histogram per tag with
// the same bucket count each tag's variance-bounded histogram in ref
// used, so both sets occupy identical memory under the cost model.
func BuildPSetEquiCount(ft *stats.FreqTable, numDistinctPids int, ref *PSet) *PSet {
	s := &PSet{
		Threshold:       -1, // marker: not variance-bounded
		byTag:           make(map[string]*PHistogram),
		numDistinctPids: numDistinctPids,
	}
	for _, tag := range ft.Tags() {
		n := 1
		if rh := ref.Histogram(tag); rh != nil {
			n = rh.NumBuckets()
		}
		s.byTag[tag] = BuildPEquiCount(tag, ft.Entries(tag), n)
	}
	return s
}

// RestoreP rebuilds a p-histogram from its buckets, as read back from
// a serialized summary. The pid order (frequency-sorted at build time)
// is the concatenation of the bucket pid lists, which is exactly how
// BuildP lays buckets out.
func RestoreP(tag string, buckets []PBucket) *PHistogram {
	h := &PHistogram{
		Tag:       tag,
		Buckets:   buckets,
		lookup:    make(map[string]int),
		lookupPtr: make(map[*bitset.Bitset]int),
	}
	for i, b := range buckets {
		for _, p := range b.Pids {
			h.lookup[p.Key()] = i
			h.lookupPtr[p] = i
			h.order = append(h.order, p)
		}
	}
	return h
}

// RestorePSet rebuilds a PSet from restored histograms.
func RestorePSet(threshold float64, numDistinctPids int, hs []*PHistogram) *PSet {
	s := &PSet{
		Threshold:       threshold,
		byTag:           make(map[string]*PHistogram, len(hs)),
		numDistinctPids: numDistinctPids,
	}
	for _, h := range hs {
		s.byTag[h.Tag] = h
	}
	return s
}

// Histograms returns the per-tag histograms in sorted tag order, for
// serialization.
func (s *PSet) Histograms() []*PHistogram {
	out := make([]*PHistogram, 0, len(s.byTag))
	for _, tag := range s.Tags() {
		out = append(out, s.byTag[tag])
	}
	return out
}

// Freq returns the (approximate) frequency of a pid: the average of
// its bucket, or 0 when the pid never occurs with this tag.
func (h *PHistogram) Freq(pid *bitset.Bitset) float64 {
	// Identity fast path for canonical (interned) pid instances; the
	// key-string map remains as the fallback for duplicates.
	if i, ok := h.lookupPtr[pid]; ok {
		return h.Buckets[i].AvgFreq
	}
	if i, ok := h.lookup[pid.Key()]; ok {
		return h.Buckets[i].AvgFreq
	}
	return 0
}

// Entries reconstructs a PathId-Frequency list from the buckets, each
// pid carrying its bucket average. This is what the estimator's path
// join consumes; at threshold 0 it is exactly the input list.
func (h *PHistogram) Entries() []stats.PidFreq {
	out := make([]stats.PidFreq, 0, len(h.order))
	for _, pid := range h.order {
		out = append(out, stats.PidFreq{Pid: pid, Freq: h.Freq(pid)})
	}
	return out
}

// PidOrder returns the pids in the frequency-sorted order the buckets
// were built from. Algorithm 2 uses this as the column order of the
// o-histogram grid.
func (h *PHistogram) PidOrder() []*bitset.Bitset { return h.order }

// NumBuckets returns the bucket count.
func (h *PHistogram) NumBuckets() int { return len(h.Buckets) }

// CheckPVariance recomputes each bucket's variance against the source
// entries and returns the maximum. Tests use it to verify the
// construction invariant.
func CheckPVariance(h *PHistogram, entries []stats.PidFreq) float64 {
	freqOf := map[string]float64{}
	for _, e := range entries {
		freqOf[e.Pid.Key()] += e.Freq
	}
	worst := 0.0
	for _, b := range h.Buckets {
		var sum, sumSq float64
		for _, p := range b.Pids {
			f := freqOf[p.Key()]
			sum += f
			sumSq += f * f
		}
		if v := variance(sum, sumSq, len(b.Pids)); v > worst {
			worst = v
		}
	}
	return worst
}

// pidRefBytes is the per-reference cost of naming a path id inside a
// summary: path ids are stored once (in the path-id binary tree) and
// referenced by their compact integer, so a reference costs 2 bytes up
// to 65535 distinct ids and 4 beyond.
func pidRefBytes(numDistinctPids int) int {
	if numDistinctPids < 1<<16 {
		return 2
	}
	return 4
}

// pBucketOverheadBytes is the fixed cost of one p-histogram bucket:
// a 4-byte average frequency and a 2-byte pid count.
const pBucketOverheadBytes = 6

// SizeBytes estimates the serialized size of the histogram under the
// repository's documented cost model: every pid reference plus the
// fixed per-bucket overhead. numDistinctPids is the document-wide
// distinct pid count that determines reference width.
func (h *PHistogram) SizeBytes(numDistinctPids int) int {
	n := len(h.Buckets) * pBucketOverheadBytes
	ref := pidRefBytes(numDistinctPids)
	for _, b := range h.Buckets {
		n += len(b.Pids) * ref
	}
	return n
}

// PSet is the p-histogram of every tag of a document, built at one
// variance threshold.
type PSet struct {
	Threshold float64
	byTag     map[string]*PHistogram

	numDistinctPids int
}

// BuildPSet builds a p-histogram per tag from the exact frequency
// table.
func BuildPSet(ft *stats.FreqTable, numDistinctPids int, threshold float64) *PSet {
	s := &PSet{
		Threshold:       threshold,
		byTag:           make(map[string]*PHistogram),
		numDistinctPids: numDistinctPids,
	}
	for _, tag := range ft.Tags() {
		s.byTag[tag] = BuildP(tag, ft.Entries(tag), threshold)
	}
	return s
}

// BuildPSetContext is BuildPSet honoring cancellation at the per-tag
// loop boundary — the unit of work Algorithm 1 runs per iteration —
// with errors wrapping guard.ErrCanceled.
func BuildPSetContext(ctx context.Context, ft *stats.FreqTable, numDistinctPids int, threshold float64) (*PSet, error) {
	s := &PSet{
		Threshold:       threshold,
		byTag:           make(map[string]*PHistogram),
		numDistinctPids: numDistinctPids,
	}
	for _, tag := range ft.Tags() {
		if err := guard.CheckContext(ctx); err != nil {
			return nil, fmt.Errorf("histogram: build p-set: %w", err)
		}
		s.byTag[tag] = BuildP(tag, ft.Entries(tag), threshold)
	}
	return s, nil
}

// Histogram returns the p-histogram of a tag, or nil.
func (s *PSet) Histogram(tag string) *PHistogram { return s.byTag[tag] }

// Entries returns the (approximate) PathId-Frequency list of a tag, or
// nil when the tag does not occur.
func (s *PSet) Entries(tag string) []stats.PidFreq {
	h := s.byTag[tag]
	if h == nil {
		return nil
	}
	return h.Entries()
}

// Tags returns the summarized tags, sorted.
func (s *PSet) Tags() []string {
	out := make([]string, 0, len(s.byTag))
	for tag := range s.byTag {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// SizeBytes totals the per-tag histogram sizes plus a small tag
// directory — the p-histogram curve of Figure 9.
func (s *PSet) SizeBytes() int {
	n := 0
	for tag, h := range s.byTag {
		n += len(tag) + 2
		n += h.SizeBytes(s.numDistinctPids)
	}
	return n
}
