// Package faultinject is a deterministic, seeded fault injector for
// filesystem-shaped dependencies. It wraps any implementation of the
// FS seam (the durable summary store's filesystem interface has the
// same shape) and perturbs its operations according to a Profile:
// injected open/read/write/sync/rename errors, short reads that
// truncate a file mid-stream, injected latency, and torn writes that
// cut a file short exactly as a crashed process would.
//
// Everything is driven by a single seeded PRNG, so a failing run is
// reproducible from its seed; the profile swaps atomically, so a chaos
// driver can flap faults on and off while other goroutines are mid-
// operation. Scripted one-shot faults (FailNextWriteAfter) give tests
// byte-exact control over where a write tears.
//
// The injected error is ErrInjected — deliberately a bare error, not a
// guard sentinel: it simulates the environment (EIO, ENOSPC, a kernel
// that lost a write), which production code must classify as transient
// I/O, never as one of its own taxonomy's input errors.
package faultinject

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by every injected fault.
var ErrInjected = errors.New("faultinject: injected fault")

// FS is the filesystem seam the injector wraps. It is structurally
// identical to the durable summary store's FS interface — only stdlib
// types appear in the signatures, so an *Injector satisfies that
// interface without either package importing the other.
type FS interface {
	Open(name string) (fs.File, error)
	Create(name string) (io.WriteCloser, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Sync(name string) error
}

// Profile sets the per-operation fault probabilities (each in [0,1])
// and injected latencies. The zero Profile injects nothing.
type Profile struct {
	OpenErr   float64 // Open returns ErrInjected
	ReadErr   float64 // a Read call returns ErrInjected
	ShortRead float64 // a Read call truncates the file from here on (early EOF)
	WriteErr  float64 // a Write call tears: partial bytes written, then ErrInjected
	SyncErr   float64 // file or directory Sync returns ErrInjected
	RenameErr float64 // Rename returns ErrInjected without renaming

	ReadLatency  time.Duration // injected before each Read call
	WriteLatency time.Duration // injected before each Write call
}

// Injector wraps an FS and injects faults per the active profile.
// Safe for concurrent use.
type Injector struct {
	inner   FS
	profile atomic.Pointer[Profile]

	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	// tornAfter scripts the next created file: it accepts that many
	// bytes, then every Write and Sync fails. -1 = disarmed.
	tornAfter atomic.Int64

	injected atomic.Int64 // faults injected (all kinds)
	ops      atomic.Int64 // operations seen (Open/Read/Write/...)
}

// New wraps inner with a disarmed injector seeded for reproducibility.
func New(seed int64, inner FS) *Injector {
	inj := &Injector{inner: inner, rng: rand.New(rand.NewSource(seed))}
	inj.profile.Store(&Profile{})
	inj.tornAfter.Store(-1)
	return inj
}

// SetProfile atomically installs a new fault profile; Profile{}
// disables injection. In-flight operations may still complete under
// the profile they started with — exactly the race a real fault has.
func (i *Injector) SetProfile(p Profile) { i.profile.Store(&p) }

// Disable turns all probabilistic injection off.
func (i *Injector) Disable() { i.SetProfile(Profile{}) }

// FailNextWriteAfter arms a one-shot torn write: the next file opened
// via Create accepts exactly n bytes, then every further Write (and
// Sync) fails with ErrInjected — the write is torn at byte n, as if
// the process died there.
func (i *Injector) FailNextWriteAfter(n int) { i.tornAfter.Store(int64(n)) }

// Injected returns the number of faults injected so far.
func (i *Injector) Injected() int64 { return i.injected.Load() }

// Ops returns the number of filesystem operations observed.
func (i *Injector) Ops() int64 { return i.ops.Load() }

// hit draws one Bernoulli trial at probability p.
func (i *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	i.mu.Lock()
	v := i.rng.Float64()
	i.mu.Unlock()
	if v < p {
		i.injected.Add(1)
		return true
	}
	return false
}

func (i *Injector) Open(name string) (fs.File, error) {
	i.ops.Add(1)
	p := i.profile.Load()
	if i.hit(p.OpenErr) {
		return nil, ErrInjected
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, inj: i, truncAt: -1}, nil
}

func (i *Injector) Create(name string) (io.WriteCloser, error) {
	i.ops.Add(1)
	w, err := i.inner.Create(name)
	if err != nil {
		return nil, err
	}
	fw := &faultWriter{w: w, inj: i, tornAt: -1}
	if n := i.tornAfter.Swap(-1); n >= 0 {
		fw.tornAt = n
		i.injected.Add(1)
	}
	return fw, nil
}

func (i *Injector) Rename(oldname, newname string) error {
	i.ops.Add(1)
	if i.hit(i.profile.Load().RenameErr) {
		return ErrInjected
	}
	return i.inner.Rename(oldname, newname)
}

func (i *Injector) Remove(name string) error {
	i.ops.Add(1)
	return i.inner.Remove(name)
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	i.ops.Add(1)
	return i.inner.ReadDir(name)
}

func (i *Injector) Sync(name string) error {
	i.ops.Add(1)
	if i.hit(i.profile.Load().SyncErr) {
		return ErrInjected
	}
	return i.inner.Sync(name)
}

// faultFile perturbs reads from one open file.
type faultFile struct {
	f        fs.File
	inj      *Injector
	consumed int64
	truncAt  int64 // once ≥ 0, the file "ends" there; -1 = intact
}

func (ff *faultFile) Stat() (fs.FileInfo, error) { return ff.f.Stat() }
func (ff *faultFile) Close() error               { return ff.f.Close() }

func (ff *faultFile) Read(b []byte) (int, error) {
	ff.inj.ops.Add(1)
	p := ff.inj.profile.Load()
	if p.ReadLatency > 0 {
		time.Sleep(p.ReadLatency)
	}
	if ff.truncAt >= 0 && ff.consumed >= ff.truncAt {
		return 0, io.EOF
	}
	if ff.inj.hit(p.ReadErr) {
		return 0, ErrInjected
	}
	if ff.truncAt < 0 && ff.inj.hit(p.ShortRead) && len(b) > 0 {
		// Truncate the file partway through this read: serve a short
		// prefix, then EOF forever — a torn file image, not an error.
		ff.inj.mu.Lock()
		cut := ff.inj.rng.Intn(len(b))
		ff.inj.mu.Unlock()
		ff.truncAt = ff.consumed + int64(cut)
	}
	if ff.truncAt >= 0 {
		if room := ff.truncAt - ff.consumed; int64(len(b)) > room {
			b = b[:room]
		}
		if len(b) == 0 {
			return 0, io.EOF
		}
	}
	n, err := ff.f.Read(b)
	ff.consumed += int64(n)
	return n, err
}

// faultWriter perturbs writes to one file being created.
type faultWriter struct {
	w       io.WriteCloser
	inj     *Injector
	written int64
	tornAt  int64 // scripted tear point; -1 = none scripted
	dead    bool  // a tear happened; everything fails from here
}

func (fw *faultWriter) Write(b []byte) (int, error) {
	fw.inj.ops.Add(1)
	p := fw.inj.profile.Load()
	if p.WriteLatency > 0 {
		time.Sleep(p.WriteLatency)
	}
	if fw.dead {
		return 0, ErrInjected
	}
	// A scripted tear cuts at an exact byte offset; a probabilistic
	// tear cuts at a random point inside this write.
	cut := int64(-1)
	if fw.tornAt >= 0 && fw.written+int64(len(b)) > fw.tornAt {
		cut = fw.tornAt - fw.written
	} else if fw.inj.hit(p.WriteErr) && len(b) > 0 {
		fw.inj.mu.Lock()
		cut = int64(fw.inj.rng.Intn(len(b)))
		fw.inj.mu.Unlock()
	}
	if cut >= 0 {
		fw.dead = true
		n, _ := fw.w.Write(b[:cut])
		fw.written += int64(n)
		return n, ErrInjected
	}
	n, err := fw.w.Write(b)
	fw.written += int64(n)
	return n, err
}

func (fw *faultWriter) Sync() error {
	fw.inj.ops.Add(1)
	if fw.dead || fw.inj.hit(fw.inj.profile.Load().SyncErr) {
		return ErrInjected
	}
	if s, ok := fw.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

func (fw *faultWriter) Close() error {
	// Close always reaches the inner file so descriptors never leak,
	// but a torn writer still reports the failure.
	err := fw.w.Close()
	if fw.dead {
		return ErrInjected
	}
	return err
}
