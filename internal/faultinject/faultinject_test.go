package faultinject

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// osFS is the minimal real-filesystem backend the tests wrap; the
// production equivalent lives in the summary store.
type osFS struct{ dir string }

func (o osFS) Open(name string) (fs.File, error) { return os.Open(filepath.Join(o.dir, name)) }
func (o osFS) Create(name string) (io.WriteCloser, error) {
	return os.Create(filepath.Join(o.dir, name))
}
func (o osFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(o.dir, oldname), filepath.Join(o.dir, newname))
}
func (o osFS) Remove(name string) error { return os.Remove(filepath.Join(o.dir, name)) }
func (o osFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return os.ReadDir(filepath.Join(o.dir, name))
}
func (o osFS) Sync(name string) error {
	f, err := os.Open(filepath.Join(o.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func newTestFS(t *testing.T) (*Injector, osFS) {
	t.Helper()
	base := osFS{dir: t.TempDir()}
	return New(1, base), base
}

func writeFile(t *testing.T, fsys FS, name string, data []byte) {
	t.Helper()
	w, err := fsys.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// TestPassthrough: a disarmed injector is a faithful proxy.
func TestPassthrough(t *testing.T) {
	inj, _ := newTestFS(t)
	payload := bytes.Repeat([]byte("xpath"), 100)
	writeFile(t, inj, "a.bin", payload)
	got, err := readFile(inj, "a.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %d bytes vs %d", len(got), len(payload))
	}
	if err := inj.Rename("a.bin", "b.bin"); err != nil {
		t.Fatal(err)
	}
	ents, err := inj.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "b.bin" {
		t.Fatalf("unexpected dir listing %v", ents)
	}
	if err := inj.Sync("b.bin"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Remove("b.bin"); err != nil {
		t.Fatal(err)
	}
	if n := inj.Injected(); n != 0 {
		t.Fatalf("disarmed injector injected %d faults", n)
	}
	if inj.Ops() == 0 {
		t.Fatal("operations not counted")
	}
}

// TestDeterministic: the same seed and workload inject the same faults
// at the same points — the property that makes chaos runs replayable.
func TestDeterministic(t *testing.T) {
	run := func(seed int64) []string {
		base := osFS{dir: t.TempDir()}
		inj := New(seed, base)
		writeFile(t, inj, "a.bin", bytes.Repeat([]byte{7}, 4096))
		inj.SetProfile(Profile{OpenErr: 0.3, ReadErr: 0.3, ShortRead: 0.3})
		var trace []string
		for i := 0; i < 50; i++ {
			got, err := readFile(inj, "a.bin")
			switch {
			case errors.Is(err, ErrInjected):
				trace = append(trace, "err")
			case err != nil:
				t.Fatalf("unexpected error class: %v", err)
			case len(got) != 4096:
				trace = append(trace, "short")
			default:
				trace = append(trace, "ok")
			}
		}
		return trace
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at op %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault traces")
	}
}

// TestShortRead: a short-read fault serves a strict prefix then EOF —
// a torn file image, never an error and never extra bytes.
func TestShortRead(t *testing.T) {
	inj, _ := newTestFS(t)
	payload := bytes.Repeat([]byte{0xAB}, 8192)
	writeFile(t, inj, "a.bin", payload)
	inj.SetProfile(Profile{ShortRead: 1})
	got, err := readFile(inj, "a.bin")
	if err != nil {
		t.Fatalf("short read must surface as EOF, got %v", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("short read served %d of %d bytes", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("short read is not a prefix of the file")
	}
}

// TestScriptedTornWrite: FailNextWriteAfter cuts at the exact byte and
// poisons the handle, including across multiple Write calls.
func TestScriptedTornWrite(t *testing.T) {
	inj, base := newTestFS(t)
	inj.FailNextWriteAfter(10)
	w, err := inj.Create("torn.bin")
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Write(bytes.Repeat([]byte{1}, 8))
	if n != 8 || err != nil {
		t.Fatalf("write before tear: n=%d err=%v", n, err)
	}
	n, err = w.Write(bytes.Repeat([]byte{2}, 8))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("tearing write: n=%d err=%v, want n=2 ErrInjected", n, err)
	}
	if _, err := w.Write([]byte{3}); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after tear: %v", err)
	}
	if s, ok := w.(interface{ Sync() error }); !ok {
		t.Fatal("fault writer lost Sync")
	} else if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after tear: %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close after tear: %v", err)
	}
	got, err := readFile(base, "torn.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("torn file holds %d bytes, want exactly 10", len(got))
	}
	// One-shot: the next Create is clean.
	writeFile(t, inj, "ok.bin", []byte("fine"))
	if got, err := readFile(base, "ok.bin"); err != nil || string(got) != "fine" {
		t.Fatalf("create after tear: %q %v", got, err)
	}
}

// TestInjectedErrors: each probability-1 knob fires with ErrInjected.
func TestInjectedErrors(t *testing.T) {
	inj, _ := newTestFS(t)
	writeFile(t, inj, "a.bin", []byte("payload"))

	inj.SetProfile(Profile{OpenErr: 1})
	if _, err := inj.Open("a.bin"); !errors.Is(err, ErrInjected) {
		t.Fatalf("open: %v", err)
	}

	inj.SetProfile(Profile{ReadErr: 1})
	if _, err := readFile(inj, "a.bin"); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v", err)
	}

	inj.SetProfile(Profile{RenameErr: 1})
	if err := inj.Rename("a.bin", "b.bin"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename: %v", err)
	}
	inj.Disable()
	if _, err := readFile(inj, "a.bin"); err != nil {
		t.Fatalf("rename must not have moved the file: %v", err)
	}

	inj.SetProfile(Profile{SyncErr: 1})
	if err := inj.Sync("a.bin"); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: %v", err)
	}

	inj.SetProfile(Profile{WriteErr: 1})
	w, err := inj.Create("c.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("data")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write: %v", err)
	}
	w.Close()

	if inj.Injected() == 0 {
		t.Fatal("fault counter did not advance")
	}
}

// TestLatency: injected read latency is observable.
func TestLatency(t *testing.T) {
	inj, _ := newTestFS(t)
	writeFile(t, inj, "a.bin", []byte("x"))
	inj.SetProfile(Profile{ReadLatency: 20 * time.Millisecond})
	start := time.Now()
	if _, err := readFile(inj, "a.bin"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("read returned in %v, latency not injected", d)
	}
}

// TestConcurrentFlap: readers race profile swaps; run under -race.
func TestConcurrentFlap(t *testing.T) {
	inj, _ := newTestFS(t)
	writeFile(t, inj, "a.bin", bytes.Repeat([]byte{9}, 1024))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			inj.SetProfile(Profile{ReadErr: 0.5, ShortRead: 0.5})
			inj.SetProfile(Profile{})
		}
	}()
	for i := 0; i < 200; i++ {
		got, err := readFile(inj, "a.bin")
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected error class: %v", err)
		}
		if err == nil && len(got) > 1024 {
			t.Fatalf("read returned %d bytes from a 1024-byte file", len(got))
		}
	}
	<-done
}
