package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpathest/internal/datagen"
	"xpathest/internal/eval"
	"xpathest/internal/paperfig"
	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

func TestPaperDocEquivalence(t *testing.T) {
	doc := paperfig.Doc()
	x := New(doc, nil, nil)
	plain := eval.New(doc)
	for _, q := range []string{
		"//A//C", "//A[/C/F]/B/D", "//C[/E!]/F", "/Root/A/B/D",
		"A[/C[/F]/folls::B!/D]", "A![/C[/F]/folls::B/D]",
		"//A[/C/foll::D!]", "//A[/B!/pre::E]", "//A/B[1]",
		"//A/F", "//Z", "//*",
	} {
		p := xpath.MustParse(q)
		want, err := plain.Selectivity(p)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := x.Count(p)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got != want {
			t.Errorf("%s: accelerated %d, plain %d", q, got, want)
		}
	}
}

func TestMatchesIdentical(t *testing.T) {
	doc := paperfig.Doc()
	x := New(doc, nil, nil)
	plain := eval.New(doc)
	p := xpath.MustParse("//B/D")
	a, err := x.Matches(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.Matches(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d differs", i)
		}
	}
}

func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	b := xmltree.NewBuilder()
	n := 1
	b.Open("r")
	var grow func(depth int)
	grow = func(depth int) {
		kids := rng.Intn(4)
		for i := 0; i < kids && n < maxNodes; i++ {
			n++
			b.Open(tags[rng.Intn(len(tags))])
			if depth < 5 {
				grow(depth + 1)
			}
			b.Close()
		}
	}
	grow(0)
	b.Close()
	return b.Document()
}

func randomQuery(rng *rand.Rand) *xpath.Path {
	tags := []string{"a", "b", "c", "r"}
	pick := func() string { return tags[rng.Intn(len(tags))] }
	var build func(depth, steps int, allowOrder bool) *xpath.Path
	build = func(depth, steps int, allowOrder bool) *xpath.Path {
		p := &xpath.Path{}
		n := 1 + rng.Intn(steps)
		for i := 0; i < n; i++ {
			axis := xpath.Child
			if rng.Intn(3) == 0 {
				axis = xpath.Descendant
			}
			if allowOrder && i > 0 && p.Steps[i-1].Axis == xpath.Child && rng.Intn(4) == 0 {
				axis = []xpath.Axis{xpath.FollowingSibling, xpath.PrecedingSibling,
					xpath.Following, xpath.Preceding}[rng.Intn(4)]
			}
			s := &xpath.Step{Axis: axis, Tag: pick()}
			if axis == xpath.Child && rng.Intn(8) == 0 {
				s.Pos = []xpath.PosFilter{xpath.PosFirst, xpath.PosLast}[rng.Intn(2)]
			}
			if depth < 1 && rng.Intn(3) == 0 {
				s.Preds = append(s.Preds, build(depth+1, 2, true))
			}
			p.Steps = append(p.Steps, s)
		}
		return p
	}
	return build(0, 3, false)
}

// Property: the pid pre-filter never changes results — the soundness
// claim of Section 2 put to work.
func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(120))
		x := New(doc, nil, nil)
		plain := eval.New(doc)
		for k := 0; k < 5; k++ {
			q := randomQuery(rng)
			want, errA := plain.Selectivity(q)
			got, errB := x.Count(q)
			if (errA == nil) != (errB == nil) {
				t.Logf("seed %d %s: err mismatch %v vs %v", seed, q, errA, errB)
				return false
			}
			if errA == nil && got != want {
				t.Logf("seed %d %s: accelerated %d, plain %d", seed, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAcceleratedVsPlain measures the pruning benefit on a
// selective branch query over a wide dataset: the join throws away the
// path ids of fields that never co-occur with the predicate, so the
// evaluator skips most of the candidate lists.
func BenchmarkAcceleratedVsPlain(b *testing.B) {
	doc := datagen.DBLP(datagen.Config{Seed: 2, Scale: 0.05})
	q := xpath.MustParse("//phdthesis[/month]/author")

	b.Run("plain", func(b *testing.B) {
		ev := eval.New(doc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ev.Selectivity(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("accelerated", func(b *testing.B) {
		x := New(doc, nil, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := x.Count(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
