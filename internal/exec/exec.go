// Package exec evaluates XPath queries exactly, accelerated by the
// path-id labeling — the "efficient structural join" use the encoding
// scheme was originally designed for ([8], reviewed in Section 2 of
// the paper). The path join prunes, per query step, the set of path
// ids that can possibly participate in a match; the exact evaluator
// then only considers elements carrying a surviving pid. Results are
// always identical to plain evaluation (the join is sound over exact
// statistics); only the work changes.
package exec

import (
	"xpathest/internal/bitset"
	"xpathest/internal/core"
	"xpathest/internal/eval"
	"xpathest/internal/pathenc"
	"xpathest/internal/stats"
	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

// Executor bundles the evaluator with the labeling-based pre-filter.
type Executor struct {
	lab *pathenc.Labeling
	ev  *eval.Evaluator
	est *core.Estimator
}

// New builds an executor. tables must be the exact statistics of doc
// (a histogram source would make the pre-filter unsound); pass nil to
// collect them.
func New(doc *xmltree.Document, lab *pathenc.Labeling, tables *stats.Tables) *Executor {
	if lab == nil {
		lab = pathenc.MustBuild(doc)
	}
	if tables == nil {
		tables = stats.Collect(doc, lab)
	}
	return &Executor{
		lab: lab,
		ev:  eval.New(doc),
		est: core.New(lab, core.TableSource{Tables: tables}),
	}
}

// filterFor derives the candidate filter from the path join, or nil
// when the query cannot be joined (wildcards): evaluation then runs
// unfiltered, which is always correct. Surviving pids and document
// labels are both interned in the labeling, so membership is a pointer
// lookup with no allocation.
func (x *Executor) filterFor(p *xpath.Path) eval.CandidateFilter {
	byStep, err := x.est.SurvivingPids(p)
	if err != nil {
		return nil
	}
	allowed := make(map[*xpath.Step]map[*bitset.Bitset]bool, len(byStep))
	for step, pids := range byStep {
		set := make(map[*bitset.Bitset]bool, len(pids))
		for _, pid := range pids {
			set[pid] = true
		}
		allowed[step] = set
	}
	return func(q *xpath.TreeNode, n *xmltree.Node) bool {
		set := allowed[q.Step]
		if set == nil {
			return true
		}
		return set[x.lab.PidOf(n)]
	}
}

// Matches returns the exact target bindings, in document order.
func (x *Executor) Matches(p *xpath.Path) ([]*xmltree.Node, error) {
	return x.ev.MatchesFiltered(p, x.filterFor(p))
}

// Count returns the exact selectivity of the query's target node.
func (x *Executor) Count(p *xpath.Path) (int, error) {
	m, err := x.Matches(p)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}
