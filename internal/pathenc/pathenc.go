// Package pathenc implements the path encoding scheme of Section 2 of
// the paper (originally from Li/Lee/Hsu, "A Path-Based Labeling Scheme
// for Efficient Structural Join", XSym 2005).
//
// Every distinct root-to-leaf tag path of a document is assigned an
// integer encoding (1-based, in order of first occurrence in document
// order) and recorded in an encoding table. Every element node is then
// labeled with a path id — a bit sequence whose width is the number of
// distinct paths:
//
//   - a leaf element sets exactly the bit of its root-to-leaf path;
//   - an internal element's path id is the bit-or of its children's.
//
// Panic policy: Build operates on documents that may ultimately come
// from untrusted input, so labeling failures (a leaf path missing from
// the encoding table, indicating a document mutated mid-build) are
// returned as errors; MustBuild panics on them and is for in-process
// trees (tests, generators) only. The remaining panics in this package
// — Path/PathTags encoding-range checks — guard programmer-error
// invariants: every encoding handed to them is produced by this
// package and validated at construction time.
//
// Path ids support the containment tests of Section 2 that the path
// join (Section 4) prunes with: strict containment of PidY by PidX
// guarantees every X-labeled node has a Y descendant, while equality
// signals at least one ancestor–descendant pair whose direction and
// distance are resolved by looking tag positions up in the encoding
// table.
package pathenc

import (
	"fmt"
	"strings"

	"xpathest/internal/bitset"
	"xpathest/internal/guard"
	"xpathest/internal/xmltree"
)

// Table is the encoding table: the bidirectional mapping between
// distinct root-to-leaf tag paths and their integer encodings
// (Figure 1(b)).
type Table struct {
	paths    []string   // paths[i-1] is the path with encoding i
	pathTags [][]string // split form of paths
	byPath   map[string]int

	// tagIDs interns every tag occurring on any path into a dense
	// 1-based id; pathTagIDs mirrors pathTags with tags replaced by
	// their ids. The witness scans on the join's hot path compare
	// these int32s instead of strings. Built by internTags once the
	// path set is complete, read-only afterwards.
	tagIDs     map[string]int32
	pathTagIDs [][]int32
}

// internTags builds the dense tag-id view of pathTags. Both table
// constructors call it after the last path is added.
func (t *Table) internTags() {
	t.tagIDs = make(map[string]int32)
	t.pathTagIDs = make([][]int32, len(t.pathTags))
	for i, tags := range t.pathTags {
		ids := make([]int32, len(tags))
		for j, tag := range tags {
			id, ok := t.tagIDs[tag]
			if !ok {
				id = int32(len(t.tagIDs)) + 1
				t.tagIDs[tag] = id
			}
			ids[j] = id
		}
		t.pathTagIDs[i] = ids
	}
}

// NumPaths returns the number of distinct root-to-leaf paths — the
// "#(Dist Paths)" column of Table 3 and the path-id width.
func (t *Table) NumPaths() int { return len(t.paths) }

// Path returns the slash-joined path with the given encoding (1-based).
func (t *Table) Path(enc int) string {
	if enc < 1 || enc > len(t.paths) {
		//lint:ignore panicpolicy documented programmer-error invariant: encodings come from this table, an out-of-range value mirrors a slice-index bug
		panic(fmt.Sprintf("pathenc: encoding %d out of range [1,%d]", enc, len(t.paths)))
	}
	return t.paths[enc-1]
}

// PathTags returns the tag sequence of the path with the given
// encoding. The returned slice must not be modified.
func (t *Table) PathTags(enc int) []string {
	if enc < 1 || enc > len(t.pathTags) {
		//lint:ignore panicpolicy documented programmer-error invariant: encodings come from this table, an out-of-range value mirrors a slice-index bug
		panic(fmt.Sprintf("pathenc: encoding %d out of range [1,%d]", enc, len(t.pathTags)))
	}
	return t.pathTags[enc-1]
}

// Encoding returns the encoding of a path string, or 0 if the path
// does not occur in the document.
func (t *Table) Encoding(path string) int { return t.byPath[path] }

// SizeBytes estimates the storage of the encoding table: each path is
// stored once as its tag string plus a 2-byte encoding. This is the
// "EncTab" column of Table 3.
func (t *Table) SizeBytes() int {
	n := 0
	for _, p := range t.paths {
		n += len(p) + 2
	}
	return n
}

// Relationship describes how two tags relate on a concrete
// root-to-leaf path.
type Relationship int

const (
	// RelNone means the two tags do not both occur on the path in the
	// required order.
	RelNone Relationship = iota
	// RelAncestor means the first tag occurs strictly above the second
	// somewhere on the path, at distance ≥ 2.
	RelAncestor
	// RelParent means the first tag occurs immediately above the
	// second somewhere on the path.
	RelParent
)

// TagRelationship reports the closest relationship between ancTag and
// descTag on the path with the given encoding. With recursive tags
// (e.g. XMark's parlist inside parlist) a tag may occur several times;
// RelParent wins over RelAncestor if any occurrence pair is adjacent.
func (t *Table) TagRelationship(enc int, ancTag, descTag string) Relationship {
	tags := t.PathTags(enc)
	rel := RelNone
	for i, tag := range tags {
		if tag != ancTag {
			continue
		}
		for j := i + 1; j < len(tags); j++ {
			if tags[j] != descTag {
				continue
			}
			if j == i+1 {
				return RelParent
			}
			rel = RelAncestor
		}
	}
	return rel
}

// Labeling is the complete path-id labeling of one document: the
// encoding table plus a path id for every element, with the distinct
// ids interned so identical bit sequences share storage (the path id
// table of Figure 1(c)).
type Labeling struct {
	Table *Table

	doc      *xmltree.Document
	pids     []*bitset.Bitset // indexed by node Ord; interned
	distinct []*bitset.Bitset // sorted by bit-sequence value
	index    map[string]int   // bitset key -> index into distinct

	// denseID maps each canonical interned instance to its position in
	// distinct. Because interning makes identical bit sequences share one
	// instance, pointer identity is a sound key, and hot-path lookups
	// avoid the Bitset.Key() string allocation entirely. Built alongside
	// index and read-only once labeling construction finishes, so
	// concurrent estimator reads need no locking.
	denseID map[*bitset.Bitset]int32
}

// NewTable builds an encoding table directly from path strings in
// encoding order (paths[0] gets encoding 1). It is the deserialization
// entry point for summaries shipped without their document.
func NewTable(paths []string) (*Table, error) {
	t := &Table{byPath: make(map[string]int, len(paths))}
	for i, p := range paths {
		if p == "" {
			return nil, fmt.Errorf("pathenc: empty path at encoding %d: %w", i+1, guard.ErrInvalidArgument)
		}
		if _, dup := t.byPath[p]; dup {
			return nil, fmt.Errorf("pathenc: duplicate path %q: %w", p, guard.ErrInvalidArgument)
		}
		t.paths = append(t.paths, p)
		t.pathTags = append(t.pathTags, strings.Split(p, "/"))
		t.byPath[p] = i + 1
	}
	t.internTags()
	return t, nil
}

// EstimationLabeling wraps an encoding table and the document's
// distinct path ids into a Labeling usable for estimation only: the
// per-element labels are absent (there is no document), but everything
// the estimator consults — the encoding table, containment tests and
// anchor segments — works. distinct may be nil when only join logic is
// needed.
func EstimationLabeling(t *Table, distinct []*bitset.Bitset) *Labeling {
	l := &Labeling{
		Table:   t,
		index:   make(map[string]int, len(distinct)),
		denseID: make(map[*bitset.Bitset]int32, len(distinct)),
	}
	for _, p := range distinct {
		l.intern(p)
	}
	return l
}

// Build labels every element of doc with its path id. It makes two
// passes: one to collect distinct root-to-leaf paths in first-
// occurrence document order, one (bottom-up) to assign path ids. An
// inconsistency between the passes (possible only if the tree is
// mutated concurrently) is reported as an error, never a panic.
func Build(doc *xmltree.Document) (*Labeling, error) {
	tbl := &Table{byPath: make(map[string]int)}
	doc.Walk(func(n *xmltree.Node) bool {
		if !n.IsLeaf() {
			return true
		}
		p := n.PathString()
		if _, ok := tbl.byPath[p]; !ok {
			tbl.paths = append(tbl.paths, p)
			tbl.pathTags = append(tbl.pathTags, strings.Split(p, "/"))
			tbl.byPath[p] = len(tbl.paths)
		}
		return true
	})
	tbl.internTags()

	l := &Labeling{
		Table:   tbl,
		doc:     doc,
		pids:    make([]*bitset.Bitset, doc.NumElements()),
		index:   make(map[string]int),
		denseID: make(map[*bitset.Bitset]int32),
	}
	if doc.Root != nil {
		if _, err := l.assign(doc.Root, []string{}); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// MustBuild is Build that panics on error, for in-process-constructed
// documents (tests, generators) where a labeling failure is a
// programmer error.
func MustBuild(doc *xmltree.Document) *Labeling {
	l, err := Build(doc)
	if err != nil {
		panic(err)
	}
	return l
}

// assign computes the path id of n bottom-up, interning the result.
// prefix carries the tags above n (unused for the id itself but kept
// for cheap leaf-path reconstruction).
func (l *Labeling) assign(n *xmltree.Node, prefix []string) (*bitset.Bitset, error) {
	width := l.Table.NumPaths()
	var pid *bitset.Bitset
	if n.IsLeaf() {
		pid = bitset.New(width)
		enc := l.Table.byPath[strings.Join(append(prefix, n.Tag), "/")]
		if enc == 0 {
			return nil, fmt.Errorf("pathenc: leaf path missing from encoding table: %s: %w", n.PathString(), guard.ErrInternal)
		}
		pid.Set(enc)
	} else {
		pid = bitset.New(width)
		childPrefix := append(prefix, n.Tag)
		for _, c := range n.Children {
			cp, err := l.assign(c, childPrefix)
			if err != nil {
				return nil, err
			}
			pid.Or(cp)
		}
	}
	pid = l.intern(pid)
	l.pids[n.Ord] = pid
	return pid, nil
}

// Intern returns the canonical copy of pid, registering it in the
// distinct-pid dictionary if new. The streaming statistics collector
// uses it to deduplicate path ids as elements close.
func (l *Labeling) Intern(pid *bitset.Bitset) *bitset.Bitset { return l.intern(pid) }

// intern returns the canonical copy of pid, registering it if new.
func (l *Labeling) intern(pid *bitset.Bitset) *bitset.Bitset {
	key := pid.Key()
	if i, ok := l.index[key]; ok {
		return l.distinct[i]
	}
	if l.denseID == nil {
		l.denseID = make(map[*bitset.Bitset]int32)
	}
	l.index[key] = len(l.distinct)
	l.denseID[pid] = int32(len(l.distinct))
	l.distinct = append(l.distinct, pid)
	return pid
}

// DenseID returns the dense id of an interned path id — its position in
// Distinct(), a value in [0, NumDistinct()) — and whether the pid is
// known. The fast path is a pointer lookup on the canonical instance
// (every pid flowing out of the statistics tables and histograms is
// one); an equal-bits-but-distinct instance falls back to a Key()
// lookup. Dense ids let hot-path caches index slices and bitmaps
// instead of hashing bit-sequence strings.
func (l *Labeling) DenseID(pid *bitset.Bitset) (int32, bool) {
	if id, ok := l.denseID[pid]; ok {
		return id, true
	}
	if i, ok := l.index[pid.Key()]; ok {
		return int32(i), true
	}
	return -1, false
}

// PidOf returns the interned path id of a node.
func (l *Labeling) PidOf(n *xmltree.Node) *bitset.Bitset { return l.pids[n.Ord] }

// Distinct returns all distinct path ids in first-interning order. The
// slice must not be modified. Its length is the "#(Dist Pid)" column
// of Table 3.
func (l *Labeling) Distinct() []*bitset.Bitset { return l.distinct }

// NumDistinct returns the number of distinct path ids in the document.
func (l *Labeling) NumDistinct() int { return len(l.distinct) }

// PidWidth returns the width of every path id in bits (= NumPaths).
func (l *Labeling) PidWidth() int { return l.Table.NumPaths() }

// PidSizeBytes returns the byte size of a single stored path id — the
// "Pid Size" column of Table 3.
func (l *Labeling) PidSizeBytes() int { return (l.PidWidth() + 7) / 8 }

// PidTableSizeBytes returns the storage of the raw path id table
// (every distinct bit sequence spelled out) — the "PidTab" column of
// Table 3, which the compressed binary tree of package pidtree is
// measured against.
func (l *Labeling) PidTableSizeBytes() int {
	return l.NumDistinct() * l.PidSizeBytes()
}

// Axis distinguishes the two downward axes of the query language.
type Axis int

const (
	// Child is the XPath child axis ("/").
	Child Axis = iota
	// Descendant is the XPath descendant axis ("//").
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// EdgeCompatible reports whether an element with tag ancTag and path
// id ancPid can stand in the given axis relationship above an element
// with tag descTag and path id descPid. This is the pruning test of
// the path join (Section 4):
//
//   - the ancestor's pid must contain or equal the descendant's
//     (necessary, because every root-to-leaf path through a node also
//     passes through all its ancestors);
//   - some common root-to-leaf path must witness the two tags at a
//     compatible distance (adjacent for Child), resolved from the
//     encoding table as in Examples 2.2 and 2.3.
func (l *Labeling) EdgeCompatible(ancTag string, ancPid *bitset.Bitset, descTag string, descPid *bitset.Bitset, axis Axis) bool {
	return ancPid.ContainsOrEqual(descPid) &&
		l.PathWitness(ancTag, descTag, descPid, axis)
}

// PathWitness is the witness half of EdgeCompatible, factored out
// because it does not depend on the ancestor's pid at all: whether
// some root-to-leaf path of descPid carries ancTag above descTag at an
// axis-compatible distance is a function of (ancTag, descTag, axis,
// descPid) only. The estimator's kernel exploits this to memoize one
// witness bit per descendant pid instead of one verdict per (ancestor,
// descendant) pid pair, leaving pure bit containment in its inner
// loop.
func (l *Labeling) PathWitness(ancTag, descTag string, descPid *bitset.Bitset, axis Axis) bool {
	// A tag missing from the table occurs on no path, so no witness
	// can exist.
	t := l.Table
	ancID, ok := t.tagIDs[ancTag]
	if !ok {
		return false
	}
	descID, ok := t.tagIDs[descTag]
	if !ok {
		return false
	}
	// In EdgeCompatible both tags occur on every path of descPid (the
	// descendant sits on all of them; the ancestor spans a superset).
	// Scan those paths for a witness — the interned-tag form of
	// TagRelationship, with the tag-id lookups hoisted out of the
	// per-path loop. ForEachOne keeps the test allocation-free.
	found := false
	descPid.ForEachOne(func(enc int) bool {
		ids := t.pathTagIDs[enc-1]
		for i, id := range ids {
			if id != ancID {
				continue
			}
			for j := i + 1; j < len(ids); j++ {
				if ids[j] != descID {
					continue
				}
				// Adjacent occurrences witness both axes; a wider gap
				// only the descendant axis.
				if j == i+1 || axis == Descendant {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// AnchorSegment supports the preceding/following rewriting of
// Example 5.3. Given the tag of the last trunk node (the common
// context, e.g. A) and the path id of the node reached through the
// order axis (e.g. D with p5), it decomposes the pid into its
// root-to-leaf paths and returns, for each, the tag segment from the
// child of the context (the sibling anchor, e.g. B) down to the target
// tag inclusive: ["B", "D"]. Segments are deduplicated.
func (l *Labeling) AnchorSegment(contextTag string, targetTag string, pid *bitset.Bitset) [][]string {
	var out [][]string
	seen := make(map[string]bool)
	pid.ForEachOne(func(enc int) bool {
		tags := l.Table.PathTags(enc)
		for i, tag := range tags {
			if tag != contextTag || i+1 >= len(tags) {
				continue
			}
			for j := i + 1; j < len(tags); j++ {
				if tags[j] != targetTag {
					continue
				}
				seg := tags[i+1 : j+1]
				key := strings.Join(seg, "/")
				if !seen[key] {
					seen[key] = true
					cp := make([]string, len(seg))
					copy(cp, seg)
					out = append(out, cp)
				}
			}
		}
		return true
	})
	return out
}
