package pathenc

import (
	"errors"
	"fmt"

	"xpathest/internal/bitset"
	"xpathest/internal/xmltree"
)

// This file holds the labeling-maintenance entry points of the
// incremental summary path (package delta). The flow after a subtree
// splice is: CloneForEdit (so summaries built over the old labeling
// keep reading it untouched), RelabelSubtree over the inserted nodes,
// RecomputeAncestors up the edit path, Rebind to re-derive the
// Ord-indexed pid slice, and only then Document.Renumber. All of it
// keeps the encoding table fixed: an edit that introduces a
// root-to-leaf path the table does not know fails with ErrPathUnknown,
// and the caller falls back to a full Build.

// ErrPathUnknown reports that an edited node's root-to-leaf path is
// absent from the encoding table, so the labeling cannot be maintained
// in place and must be rebuilt from the document.
var ErrPathUnknown = errors.New("pathenc: path not in encoding table")

// CloneForEdit returns a Labeling that shares the encoding table and
// every interned pid instance with l but owns copies of the mutable
// interning structures (pid slice, distinct list, lookup maps).
// Editing the clone leaves l fully intact, so estimators holding l
// keep working concurrently while an edit is applied.
func (l *Labeling) CloneForEdit() *Labeling {
	c := &Labeling{
		Table:    l.Table,
		doc:      l.doc,
		pids:     append([]*bitset.Bitset(nil), l.pids...),
		distinct: append([]*bitset.Bitset(nil), l.distinct...),
		index:    make(map[string]int, len(l.index)),
		denseID:  make(map[*bitset.Bitset]int32, len(l.denseID)),
	}
	for k, v := range l.index {
		c.index[k] = v
	}
	for k, v := range l.denseID {
		c.denseID[k] = v
	}
	return c
}

// PidChange records one node whose path id changed during an
// incremental relabeling: the statistics maintenance moves the node's
// table contributions from Old to New.
type PidChange struct {
	Node *xmltree.Node
	Old  *bitset.Bitset
	New  *bitset.Bitset
}

// RelabelSubtree labels every node of a freshly attached subtree
// bottom-up from the encoding table, interning each pid and recording
// it in overrides. The subtree must already hang off the document (its
// Parent chain supplies the path prefix). A leaf whose root-to-leaf
// path is missing from the table yields an error wrapping
// ErrPathUnknown and leaves overrides partially filled; the caller
// discards the clone in that case.
func (l *Labeling) RelabelSubtree(sub *xmltree.Node, overrides map[*xmltree.Node]*bitset.Bitset) error {
	prefix := ""
	if sub.Parent != nil {
		prefix = sub.Parent.PathString() + "/"
	}
	_, err := l.relabel(sub, prefix, overrides)
	return err
}

func (l *Labeling) relabel(n *xmltree.Node, prefix string, overrides map[*xmltree.Node]*bitset.Bitset) (*bitset.Bitset, error) {
	pid := bitset.New(l.Table.NumPaths())
	if n.IsLeaf() {
		enc := l.Table.Encoding(prefix + n.Tag)
		if enc == 0 {
			return nil, fmt.Errorf("%w: %s%s", ErrPathUnknown, prefix, n.Tag)
		}
		pid.Set(enc)
	} else {
		childPrefix := prefix + n.Tag + "/"
		for _, c := range n.Children {
			cp, err := l.relabel(c, childPrefix, overrides)
			if err != nil {
				return nil, err
			}
			pid.Or(cp)
		}
	}
	pid = l.intern(pid)
	overrides[n] = pid
	return pid, nil
}

// RecomputeAncestors re-derives the path id of n and its ancestors
// after n's children changed, stopping as soon as a node's pid comes
// out unchanged (an unchanged pid cannot alter its parent's bit-or).
// Child pids are read from overrides when present, else from the
// still-valid pre-edit Ord index. A node that became a leaf is
// re-encoded from the table; a missing path yields an error wrapping
// ErrPathUnknown. Every change is recorded in both overrides and the
// returned list.
func (l *Labeling) RecomputeAncestors(n *xmltree.Node, overrides map[*xmltree.Node]*bitset.Bitset) ([]PidChange, error) {
	var changes []PidChange
	for cur := n; cur != nil; cur = cur.Parent {
		pid := bitset.New(l.Table.NumPaths())
		if cur.IsLeaf() {
			enc := l.Table.Encoding(cur.PathString())
			if enc == 0 {
				return nil, fmt.Errorf("%w: %s", ErrPathUnknown, cur.PathString())
			}
			pid.Set(enc)
		} else {
			for _, c := range cur.Children {
				cp := overrides[c]
				if cp == nil {
					cp = l.pids[c.Ord]
				}
				pid.Or(cp)
			}
		}
		np := l.intern(pid)
		old := l.pids[cur.Ord]
		if np == old {
			break
		}
		overrides[cur] = np
		changes = append(changes, PidChange{Node: cur, Old: old, New: np})
	}
	return changes, nil
}

// Rebind rebuilds the Ord-indexed pid slice after a subtree edit: it
// walks the edited tree in preorder (the order Renumber will assign),
// reading each node's pid from overrides when present and from the
// node's pre-edit Ord otherwise. It must run before Document.Renumber,
// while the old Ord values are still valid.
func (l *Labeling) Rebind(overrides map[*xmltree.Node]*bitset.Bitset) {
	newPids := make([]*bitset.Bitset, 0, len(l.pids))
	l.doc.Walk(func(n *xmltree.Node) bool {
		p := overrides[n]
		if p == nil {
			p = l.pids[n.Ord]
		}
		newPids = append(newPids, p)
		return true
	})
	l.pids = newPids
}
