package pathenc

import (
	"bytes"
	"errors"
	"testing"

	"xpathest/internal/bitset"
	"xpathest/internal/xmltree"
)

func buildEdit(t *testing.T, s string) (*xmltree.Document, *Labeling) {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	return doc, lab
}

// pidsByPreorder snapshots every node's pid string in document order.
func pidsByPreorder(doc *xmltree.Document, l *Labeling) []string {
	var out []string
	doc.Walk(func(n *xmltree.Node) bool {
		out = append(out, l.PidOf(n).String())
		return true
	})
	return out
}

// TestEditMaintenanceFlow runs the full labeling-maintenance sequence
// (CloneForEdit, RelabelSubtree, RecomputeAncestors, Rebind, Renumber)
// for a subtree splice and demands node-for-node pid agreement with a
// from-scratch Build over the edited document — while the pre-edit
// labeling stays untouched.
func TestEditMaintenanceFlow(t *testing.T) {
	doc, lab := buildEdit(t, `<r><a><b></b></a><a><b></b><c></c></a></r>`)
	before := pidsByPreorder(doc, lab)

	clone := lab.CloneForEdit()
	sub := xmltree.CloneSubtree(doc.Root.Children[0])
	if err := doc.Attach(doc.Root, 2, sub); err != nil {
		t.Fatal(err)
	}
	overrides := map[*xmltree.Node]*bitset.Bitset{}
	if err := clone.RelabelSubtree(sub, overrides); err != nil {
		t.Fatalf("RelabelSubtree: %v", err)
	}
	if _, ok := overrides[sub]; !ok {
		t.Fatal("RelabelSubtree did not record the subtree root")
	}
	if _, err := clone.RecomputeAncestors(doc.Root, overrides); err != nil {
		t.Fatalf("RecomputeAncestors: %v", err)
	}
	clone.Rebind(overrides)
	doc.Renumber()

	var buf bytes.Buffer
	if err := doc.WriteXML(&buf, false); err != nil {
		t.Fatal(err)
	}
	doc2, fresh := buildEdit(t, buf.String())
	got := pidsByPreorder(doc, clone)
	want := pidsByPreorder(doc2, fresh)
	if len(got) != len(want) {
		t.Fatalf("maintained %d pids, rebuild %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("node %d: maintained pid %s, rebuild %s", i, got[i], want[i])
		}
	}
	if clone.NumDistinct() != fresh.NumDistinct() {
		t.Errorf("maintained %d distinct pids, rebuild %d", clone.NumDistinct(), fresh.NumDistinct())
	}

	// The splice duplicated existing paths: the pre-edit labeling must
	// not have seen any of it. (Renumber changed Ord values, so compare
	// against a rebuild over the original serialization.)
	origDoc, origLab := buildEdit(t, `<r><a><b></b></a><a><b></b><c></c></a></r>`)
	if ba := pidsByPreorder(origDoc, origLab); len(ba) != len(before) {
		t.Fatalf("original labeling changed shape")
	}
	for i, p := range pidsByPreorder(origDoc, lab) {
		if p != before[i] {
			t.Errorf("pre-edit labeling node %d changed: %s != %s", i, p, before[i])
		}
	}
}

// TestRecomputeAncestorsPropagates deletes a subtree so an ancestor's
// pid genuinely changes, and checks the change list plus the
// stop-at-unchanged contract.
func TestRecomputeAncestorsPropagates(t *testing.T) {
	doc, lab := buildEdit(t, `<r><a><b></b><c></c></a><a><b></b></a></r>`)
	clone := lab.CloneForEdit()
	// Delete the only <c>: its parent <a> loses the r/a/c bit, and the
	// root loses it too — two changes.
	target := doc.Root.Children[0].Children[1]
	parent := target.Parent
	if err := doc.Detach(target); err != nil {
		t.Fatal(err)
	}
	overrides := map[*xmltree.Node]*bitset.Bitset{}
	changes, err := clone.RecomputeAncestors(parent, overrides)
	if err != nil {
		t.Fatalf("RecomputeAncestors: %v", err)
	}
	if len(changes) != 2 {
		t.Fatalf("%d pid changes, want 2 (parent and root)", len(changes))
	}
	for _, ch := range changes {
		if ch.Old == ch.New {
			t.Errorf("change for %q reports identical pids", ch.Node.Tag)
		}
		if overrides[ch.Node] != ch.New {
			t.Errorf("change for %q not mirrored in overrides", ch.Node.Tag)
		}
	}

	// A no-op recompute (nothing changed) must stop immediately.
	doc2, lab2 := buildEdit(t, `<r><a><b></b></a><a><b></b></a></r>`)
	clone2 := lab2.CloneForEdit()
	ov2 := map[*xmltree.Node]*bitset.Bitset{}
	ch2, err := clone2.RecomputeAncestors(doc2.Root.Children[0], ov2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch2) != 0 || len(ov2) != 0 {
		t.Errorf("unchanged recompute produced %d changes, %d overrides", len(ch2), len(ov2))
	}
}

// TestRelabelSubtreeUnknownPath pins the fallback trigger: a subtree
// introducing a root-to-leaf path absent from the encoding table fails
// with ErrPathUnknown.
func TestRelabelSubtreeUnknownPath(t *testing.T) {
	doc, lab := buildEdit(t, `<r><a></a></r>`)
	clone := lab.CloneForEdit()
	zdoc, err := xmltree.ParseString(`<z><a></a></z>`)
	if err != nil {
		t.Fatal(err)
	}
	sub := zdoc.Root
	if err := doc.Attach(doc.Root, 1, sub); err != nil {
		t.Fatal(err)
	}
	err = clone.RelabelSubtree(sub, map[*xmltree.Node]*bitset.Bitset{})
	if !errors.Is(err, ErrPathUnknown) {
		t.Fatalf("RelabelSubtree = %v, want ErrPathUnknown", err)
	}
}

// TestRecomputeAncestorsUnknownPath deletes the only child of an
// internal node: the node becomes a leaf whose own path was never a
// root-to-leaf path, so maintenance must refuse with ErrPathUnknown.
func TestRecomputeAncestorsUnknownPath(t *testing.T) {
	doc, lab := buildEdit(t, `<r><a><b></b></a></r>`)
	clone := lab.CloneForEdit()
	a := doc.Root.Children[0]
	if err := doc.Detach(a.Children[0]); err != nil {
		t.Fatal(err)
	}
	_, err := clone.RecomputeAncestors(a, map[*xmltree.Node]*bitset.Bitset{})
	if !errors.Is(err, ErrPathUnknown) {
		t.Fatalf("RecomputeAncestors = %v, want ErrPathUnknown", err)
	}
}

// TestCloneForEditShares pins what the clone shares (table, interned
// instances) and what it owns (interning maps, pid slice).
func TestCloneForEditShares(t *testing.T) {
	doc, lab := buildEdit(t, `<r><a><b></b></a></r>`)
	c := lab.CloneForEdit()
	if c.Table != lab.Table {
		t.Error("clone must share the encoding table")
	}
	if c.NumDistinct() != lab.NumDistinct() {
		t.Errorf("clone distinct %d != %d", c.NumDistinct(), lab.NumDistinct())
	}
	doc.Walk(func(n *xmltree.Node) bool {
		if c.PidOf(n) != lab.PidOf(n) {
			t.Errorf("node %q: clone pid instance differs", n.Tag)
		}
		return true
	})
	// Interning a novel pid into the clone must not grow the original.
	novel := bitset.New(lab.Table.NumPaths())
	c.Intern(novel)
	if c.NumDistinct() != lab.NumDistinct()+1 {
		t.Errorf("clone distinct %d after intern, want %d", c.NumDistinct(), lab.NumDistinct()+1)
	}
}
