package pathenc_test

import (
	"testing"

	"xpathest/internal/bitset"
	"xpathest/internal/datagen"
	"xpathest/internal/pathenc"
)

// BenchmarkEdgeCompatible measures the per-pair compatibility check
// the path join asks for once per (ancestor pid, descendant pid) pair
// of every query edge. The pid pairs are pre-filtered to pass the
// bit-containment test and to have multi-path descendants, so every
// call walks the encoding table over several paths — the calls that
// dominate real joins, where internal-node pids cover many paths and
// most surviving pairs get past the cheap rejection.
func BenchmarkEdgeCompatible(b *testing.B) {
	doc := datagen.SSPlays(datagen.Config{Seed: 42, Scale: 0.05})
	lab, err := pathenc.Build(doc)
	if err != nil {
		b.Fatal(err)
	}
	pids := lab.Distinct()
	type pair struct{ anc, desc *bitset.Bitset }
	var pairs []pair
	for _, a := range pids {
		for _, d := range pids {
			if a != d && d.Count() >= 2 && a.ContainsOrEqual(d) {
				pairs = append(pairs, pair{anc: a, desc: d})
			}
		}
		if len(pairs) >= 512 {
			break
		}
	}
	if len(pairs) == 0 {
		b.Fatal("no containment-passing pid pairs in labeling")
	}
	edges := []struct {
		anc, desc string
		axis      pathenc.Axis
	}{
		{"ACT", "SCENE", pathenc.Child},
		{"SCENE", "SPEECH", pathenc.Child},
		{"PLAY", "LINE", pathenc.Descendant},
		{"PLAYS", "STAGEDIR", pathenc.Descendant},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		p := pairs[i%len(pairs)]
		lab.EdgeCompatible(e.anc, p.anc, e.desc, p.desc, e.axis)
	}
}
