package pathenc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xpathest/internal/bitset"
	"xpathest/internal/paperfig"
	"xpathest/internal/xmltree"
)

// figure1Pids are the bit sequences of Figure 1(c), keyed by the
// paper's names.
var figure1Pids = map[string]string{
	"p1": "0001", "p2": "0010", "p3": "0011", "p4": "0100",
	"p5": "1000", "p6": "1010", "p7": "1011", "p8": "1100", "p9": "1111",
}

func buildFigure1(t *testing.T) *Labeling {
	t.Helper()
	return MustBuild(paperfig.Doc())
}

// TestEncodingTableFigure1b pins the encoding table of Figure 1(b).
func TestEncodingTableFigure1b(t *testing.T) {
	l := buildFigure1(t)
	want := []string{"Root/A/B/D", "Root/A/B/E", "Root/A/C/E", "Root/A/C/F"}
	if l.Table.NumPaths() != len(want) {
		t.Fatalf("NumPaths = %d, want %d", l.Table.NumPaths(), len(want))
	}
	for i, p := range want {
		if got := l.Table.Path(i + 1); got != p {
			t.Errorf("Path(%d) = %q, want %q", i+1, got, p)
		}
		if got := l.Table.Encoding(p); got != i+1 {
			t.Errorf("Encoding(%q) = %d, want %d", p, got, i+1)
		}
	}
	if l.Table.Encoding("Root/A/B/F") != 0 {
		t.Error("Encoding of absent path should be 0")
	}
}

// TestLabelingFigure1 pins the path ids of every element against
// Figure 1(a)/(c): Example 2.1 and the full PathId table.
func TestLabelingFigure1(t *testing.T) {
	l := buildFigure1(t)
	doc := l.doc

	// Collect pid strings per tag in document order.
	got := map[string][]string{}
	doc.Walk(func(n *xmltree.Node) bool {
		got[n.Tag] = append(got[n.Tag], l.PidOf(n).String())
		return true
	})
	want := map[string][]string{
		"Root": {"1111"},                         // p9
		"A":    {"1100", "1011", "1010"},         // p8, p7, p6
		"B":    {"1100", "1000", "1000", "1000"}, // p8, p5, p5, p5
		"C":    {"0011", "0010"},                 // p3, p2
		"D":    {"1000", "1000", "1000", "1000"}, // p5 ×4
		"E":    {"0100", "0010", "0010"},         // p4, p2, p2
		"F":    {"0001"},                         // p1
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pids per tag:\n got %v\nwant %v", got, want)
	}

	// Exactly the nine distinct pids of Figure 1(c).
	if l.NumDistinct() != 9 {
		t.Fatalf("NumDistinct = %d, want 9", l.NumDistinct())
	}
	distinct := map[string]bool{}
	for _, p := range l.Distinct() {
		distinct[p.String()] = true
	}
	for name, bits := range figure1Pids {
		if !distinct[bits] {
			t.Errorf("distinct pids missing %s (%s)", name, bits)
		}
	}
}

func TestInterning(t *testing.T) {
	l := buildFigure1(t)
	var ds []*xmltree.Node
	l.doc.Walk(func(n *xmltree.Node) bool {
		if n.Tag == "D" {
			ds = append(ds, n)
		}
		return true
	})
	if len(ds) != 4 {
		t.Fatalf("found %d D nodes", len(ds))
	}
	for _, d := range ds[1:] {
		if l.PidOf(d) != l.PidOf(ds[0]) {
			t.Fatal("equal pids are not interned to the same object")
		}
	}
}

// TestTagRelationship pins Example 2.2: from path id p8 (1100), path 1
// (Root/A/B/D) shows A is the parent of B.
func TestTagRelationship(t *testing.T) {
	l := buildFigure1(t)
	if rel := l.Table.TagRelationship(1, "A", "B"); rel != RelParent {
		t.Fatalf("A vs B on path 1 = %v, want RelParent", rel)
	}
	if rel := l.Table.TagRelationship(1, "A", "D"); rel != RelAncestor {
		t.Fatalf("A vs D on path 1 = %v, want RelAncestor", rel)
	}
	if rel := l.Table.TagRelationship(1, "B", "A"); rel != RelNone {
		t.Fatalf("B vs A on path 1 = %v, want RelNone", rel)
	}
	if rel := l.Table.TagRelationship(1, "A", "F"); rel != RelNone {
		t.Fatalf("A vs F on path 1 = %v, want RelNone", rel)
	}
	if rel := l.Table.TagRelationship(1, "Root", "D"); rel != RelAncestor {
		t.Fatalf("Root vs D on path 1 = %v, want RelAncestor", rel)
	}
}

func TestTagRelationshipRecursive(t *testing.T) {
	// a/b/a/b: a is both parent and grandparent of b; parent must win.
	b := xmltree.NewBuilder()
	b.Open("a").Open("b").Open("a").Leaf("b", "").Close().Close().Close()
	l := MustBuild(b.Document())
	if l.Table.NumPaths() != 1 {
		t.Fatalf("NumPaths = %d", l.Table.NumPaths())
	}
	if rel := l.Table.TagRelationship(1, "a", "b"); rel != RelParent {
		t.Fatalf("a vs b = %v, want RelParent", rel)
	}
	if rel := l.Table.TagRelationship(1, "b", "a"); rel != RelParent {
		t.Fatalf("b vs a = %v, want RelParent (b is parent of inner a)", rel)
	}
}

// TestEdgeCompatible pins the containment reasoning of Examples 2.2,
// 2.3 and 4.1.
func TestEdgeCompatible(t *testing.T) {
	l := buildFigure1(t)
	pid := func(name string) *bitset.Bitset {
		return bitset.MustFromString(figure1Pids[name])
	}

	cases := []struct {
		anc, ancPid, desc, descPid string
		axis                       Axis
		want                       bool
	}{
		// Example 2.2: A(p8) parent of B(p8) — equal pids.
		{"A", "p8", "B", "p8", Child, true},
		{"A", "p8", "B", "p8", Descendant, true},
		// Example 2.3: C(p3) parent of E(p2) — strict containment.
		{"C", "p3", "E", "p2", Child, true},
		// Example 4.1: p2 for C cannot contain p1 for F.
		{"C", "p2", "F", "p1", Child, false},
		{"C", "p2", "F", "p1", Descendant, false},
		// Example 4.1: p6 and p8 for A cannot contain p3 for C.
		{"A", "p6", "C", "p3", Child, false},
		{"A", "p8", "C", "p3", Child, false},
		{"A", "p7", "C", "p3", Child, true},
		// A(p7) has B(p5) descendants at distance 1 (child).
		{"A", "p7", "B", "p5", Child, true},
		// A(p7) is grandparent of D(p5): descendant yes, child no.
		{"A", "p7", "D", "p5", Child, false},
		{"A", "p7", "D", "p5", Descendant, true},
		// Root contains everything, at depth ≥ 2 for B.
		{"Root", "p9", "B", "p5", Descendant, true},
		{"Root", "p9", "B", "p5", Child, false},
		// Direction matters: B under A, never A under B.
		{"B", "p5", "A", "p7", Descendant, false},
	}
	for _, c := range cases {
		got := l.EdgeCompatible(c.anc, pid(c.ancPid), c.desc, pid(c.descPid), c.axis)
		if got != c.want {
			t.Errorf("EdgeCompatible(%s:%s %v %s:%s) = %v, want %v",
				c.anc, c.ancPid, c.axis, c.desc, c.descPid, got, c.want)
		}
	}
}

// TestAnchorSegment pins Example 5.3: D with p5 under context A
// decomposes to the anchor segment B/D.
func TestAnchorSegment(t *testing.T) {
	l := buildFigure1(t)
	p5 := bitset.MustFromString("1000")
	segs := l.AnchorSegment("A", "D", p5)
	if len(segs) != 1 || !reflect.DeepEqual(segs[0], []string{"B", "D"}) {
		t.Fatalf("AnchorSegment = %v, want [[B D]]", segs)
	}

	// E with p2|p4 under A yields two segments: C/E and B/E.
	pe := bitset.MustFromString("0110")
	segs = l.AnchorSegment("A", "E", pe)
	got := map[string]bool{}
	for _, s := range segs {
		got[s[0]+"/"+s[1]] = true
	}
	if len(segs) != 2 || !got["B/E"] || !got["C/E"] {
		t.Fatalf("AnchorSegment(E, 0110) = %v, want B/E and C/E", segs)
	}

	// No segment when the context tag is absent from the paths.
	if segs := l.AnchorSegment("Z", "D", p5); len(segs) != 0 {
		t.Fatalf("AnchorSegment with absent context = %v", segs)
	}
}

func TestPidSizes(t *testing.T) {
	l := buildFigure1(t)
	if l.PidWidth() != 4 {
		t.Fatalf("PidWidth = %d", l.PidWidth())
	}
	if l.PidSizeBytes() != 1 {
		t.Fatalf("PidSizeBytes = %d", l.PidSizeBytes())
	}
	if l.PidTableSizeBytes() != 9 {
		t.Fatalf("PidTableSizeBytes = %d", l.PidTableSizeBytes())
	}
	if l.Table.SizeBytes() == 0 {
		t.Fatal("encoding table size should be positive")
	}
}

func TestPathPanicsOutOfRange(t *testing.T) {
	l := buildFigure1(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Path(99) did not panic")
		}
	}()
	l.Table.Path(99)
}

func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	tags := []string{"a", "b", "c", "d", "e", "f"}
	b := xmltree.NewBuilder()
	n := 1
	b.Open("root")
	var grow func(depth int)
	grow = func(depth int) {
		kids := rng.Intn(4)
		for i := 0; i < kids && n < maxNodes; i++ {
			n++
			b.Open(tags[rng.Intn(len(tags))])
			if depth < 7 {
				grow(depth + 1)
			}
			b.Close()
		}
	}
	grow(0)
	b.Close()
	return b.Document()
}

// Property: for every internal node, its pid is the or of its
// children's pids; for every leaf the pid has exactly one bit — the
// encoding of its root-to-leaf path (the labeling rules of Section 2).
func TestQuickLabelingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(120))
		l := MustBuild(doc)
		ok := true
		doc.Walk(func(n *xmltree.Node) bool {
			pid := l.PidOf(n)
			if n.IsLeaf() {
				if pid.Count() != 1 {
					ok = false
					return false
				}
				if pid.FirstOne() != l.Table.Encoding(n.PathString()) {
					ok = false
					return false
				}
				return true
			}
			or := bitset.New(l.PidWidth())
			for _, c := range n.Children {
				or.Or(l.PidOf(c))
			}
			if !or.Equal(pid) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (Section 2, soundness of the join test): whenever node y is
// a descendant of node x in the real tree, EdgeCompatible accepts the
// (tag, pid) pair of x over y for the Descendant axis; and whenever y
// is a child of x, for the Child axis too.
func TestQuickEdgeCompatibleSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(100))
		l := MustBuild(doc)
		ok := true
		doc.Walk(func(x *xmltree.Node) bool {
			for _, y := range x.Children {
				if !l.EdgeCompatible(x.Tag, l.PidOf(x), y.Tag, l.PidOf(y), Child) {
					ok = false
					return false
				}
			}
			// Check one random descendant chain for the Descendant axis.
			cur := x
			for len(cur.Children) > 0 {
				cur = cur.Children[rng.Intn(len(cur.Children))]
				if !l.EdgeCompatible(x.Tag, l.PidOf(x), cur.Tag, l.PidOf(cur), Descendant) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (Case 2 of Section 2): strict containment implies a
// descendant. The paper's literal claim — every x in (tagX, PidX) has
// a descendant y in (tagY, PidY) whenever PidX ⊋ PidY — is false in
// general (the y below x can carry a different pid than the group's,
// even on non-recursive schemas), so we assert the statement the path
// join actually relies on: every x has a *tag-Y* descendant. That
// version holds on depth-stratified (non-recursive) schemas, which is
// the regime of the paper's datasets.
func TestQuickContainmentImpliesDescendant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := stratifiedDoc(rng, 1+rng.Intn(90))
		l := MustBuild(doc)

		// Group nodes by (tag, pid key).
		type group struct {
			tag   string
			pid   *bitset.Bitset
			nodes []*xmltree.Node
		}
		groups := map[string]*group{}
		doc.Walk(func(n *xmltree.Node) bool {
			k := n.Tag + "\x00" + l.PidOf(n).Key()
			g, okk := groups[k]
			if !okk {
				g = &group{tag: n.Tag, pid: l.PidOf(n)}
				groups[k] = g
			}
			g.nodes = append(g.nodes, n)
			return true
		})

		hasTagDescendant := func(x *xmltree.Node, tag string) bool {
			found := false
			var rec func(n *xmltree.Node)
			rec = func(n *xmltree.Node) {
				if found {
					return
				}
				for _, c := range n.Children {
					if c.Tag == tag {
						found = true
						return
					}
					rec(c)
				}
			}
			rec(x)
			return found
		}

		for _, gx := range groups {
			for _, gy := range groups {
				if !gx.pid.Contains(gy.pid) {
					continue
				}
				// Containment alone does not orient the relationship
				// (the container's instances can sit *below* tag-Y
				// positions on other instances); the join always pairs
				// it with the encoding-table witness, so assert the
				// descendant guarantee exactly under that condition.
				if !l.EdgeCompatible(gx.tag, gx.pid, gy.tag, gy.pid, Descendant) {
					continue
				}
				for _, x := range gx.nodes {
					if !hasTagDescendant(x, gy.tag) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// stratifiedDoc builds a random document whose tags are unique per
// depth — a non-recursive schema like the paper's datasets.
func stratifiedDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	b := xmltree.NewBuilder()
	n := 1
	b.Open("root")
	var grow func(depth int)
	grow = func(depth int) {
		kids := rng.Intn(4)
		for i := 0; i < kids && n < maxNodes; i++ {
			n++
			b.Open(string(rune('a'+rng.Intn(3))) + string(rune('0'+depth)))
			if depth < 6 {
				grow(depth + 1)
			}
			b.Close()
		}
	}
	grow(0)
	b.Close()
	return b.Document()
}

func BenchmarkBuildLabeling(b *testing.B) {
	doc := paperfig.Doc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(doc)
	}
}
