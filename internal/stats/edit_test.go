package stats

import (
	"testing"

	"xpathest/internal/pathenc"
	"xpathest/internal/xmltree"
)

func collectEdit(t *testing.T, s string) (*xmltree.Document, *pathenc.Labeling, *Tables) {
	t.Helper()
	doc, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := pathenc.Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	return doc, lab, Collect(doc, lab)
}

func freqOf(t *FreqTable, tag, pid string) float64 {
	for _, e := range t.Entries(tag) {
		if e.Pid.String() == pid {
			return e.Freq
		}
	}
	return 0
}

// TestAddFreq pins the mutator's append/adjust/vanish semantics
// against a collected table.
func TestAddFreq(t *testing.T) {
	doc, lab, tb := collectEdit(t, `<r><a></a><a></a><b></b></r>`)
	aPid := lab.PidOf(doc.Root.Children[0])
	bPid := lab.PidOf(doc.Root.Children[2])
	aStr, bStr := aPid.String(), bPid.String()

	if tb.Freq.NumTags() != 3 {
		t.Fatalf("NumTags = %d, want 3", tb.Freq.NumTags())
	}
	tb.Freq.AddFreq("a", aPid, 1)
	if got := freqOf(tb.Freq, "a", aStr); got != 3 {
		t.Errorf("a freq after +1 = %v, want 3", got)
	}
	tb.Freq.AddFreq("a", aPid, -1)
	if got := freqOf(tb.Freq, "a", aStr); got != 2 {
		t.Errorf("a freq after -1 = %v, want 2", got)
	}

	// Draining b to zero removes the entry and the tag.
	tb.Freq.AddFreq("b", bPid, -1)
	if got := freqOf(tb.Freq, "b", bStr); got != 0 {
		t.Errorf("b freq after drain = %v, want gone", got)
	}
	if tb.Freq.NumTags() != 2 {
		t.Errorf("NumTags after drain = %d, want 2", tb.Freq.NumTags())
	}

	// A positive delta on an absent entry appends; a negative one on an
	// absent entry is a no-op (nothing to retract).
	tb.Freq.AddFreq("b", bPid, 1)
	if got := freqOf(tb.Freq, "b", bStr); got != 1 {
		t.Errorf("b freq after re-add = %v, want 1", got)
	}
	tb.Freq.AddFreq("zz", bPid, -1)
	if tb.Freq.NumTags() != 3 {
		t.Errorf("NumTags after absent retract = %d, want 3", tb.Freq.NumTags())
	}
}

// TestApplyGroupRoundtrip retracts a sibling group's path-order
// contributions and re-adds them: the retraction must empty the table
// set completely (structures vanish with their counts) and the re-add
// must restore every collected cell.
func TestApplyGroupRoundtrip(t *testing.T) {
	doc, lab, tb := collectEdit(t, `<r><a></a><b></b><a></a></r>`)
	var members []GroupMember
	for _, c := range doc.Root.Children {
		members = append(members, GroupMember{Tag: c.Tag, Pid: lab.PidOf(c)})
	}

	before := tb.Order.NumCells()
	if before == 0 {
		t.Fatal("collected order tables are empty")
	}
	tb.Order.ApplyGroup(members, -1)
	if n := tb.Order.NumCells(); n != 0 {
		t.Fatalf("NumCells after retract = %d, want 0", n)
	}
	if tags := tb.Order.Tags(); len(tags) != 0 {
		t.Fatalf("tags after retract = %v, want none", tags)
	}
	tb.Order.ApplyGroup(members, 1)
	if n := tb.Order.NumCells(); n != before {
		t.Fatalf("NumCells after re-add = %d, want %d", n, before)
	}
	// Spot-check against a fresh collection.
	_, _, fresh := collectEdit(t, `<r><a></a><b></b><a></a></r>`)
	aPid := members[0].Pid
	for _, reg := range []Region{Before, After} {
		got := tb.Order.Table("a").Get(reg, aPid, "b")
		want := fresh.Order.Table("a").Get(reg, aPid, "b")
		if got != want {
			t.Errorf("g(a,%s)[pid,b] = %v, want %v", reg, got, want)
		}
	}

	// Groups below two members contribute nothing.
	tb.Order.ApplyGroup(members[:1], 1)
	if n := tb.Order.NumCells(); n != before {
		t.Errorf("singleton group changed NumCells to %d", n)
	}
}

// TestAddOrderLifecycle drives one cell from creation to deletion.
func TestAddOrderLifecycle(t *testing.T) {
	doc, lab, _ := collectEdit(t, `<r><a></a><b></b></r>`)
	aPid := lab.PidOf(doc.Root.Children[0])

	ts := &OrderTables{byTag: map[string]*OrderTable{}}
	ts.AddOrder("a", Before, aPid, "b", 0)
	if len(ts.Tags()) != 0 {
		t.Fatal("zero delta must not create a table")
	}
	ts.AddOrder("a", Before, aPid, "b", 2)
	if got := ts.Table("a").Get(Before, aPid, "b"); got != 2 {
		t.Fatalf("cell = %v, want 2", got)
	}
	// A second sibling tag in the same cell map keeps the cell alive
	// when the first drains.
	ts.AddOrder("a", Before, aPid, "c", 1)
	ts.AddOrder("a", Before, aPid, "b", -2)
	if got := ts.Table("a").Get(Before, aPid, "c"); got != 1 {
		t.Fatalf("surviving sibling cell = %v, want 1", got)
	}
	ts.AddOrder("a", Before, aPid, "c", -1)
	if len(ts.Tags()) != 0 {
		t.Fatalf("drained table must vanish, tags = %v", ts.Tags())
	}
}

// TestMoveCells rewrites an element's cells from its old pid to a new
// one without changing totals.
func TestMoveCells(t *testing.T) {
	doc, lab, tb := collectEdit(t, `<r><a></a><b></b><a></a></r>`)
	aPid := lab.PidOf(doc.Root.Children[0])
	rootPid := lab.PidOf(doc.Root) // any distinct interned pid works as the target

	before := tb.Order.NumCells()
	tb.Order.MoveCells("a", aPid, rootPid, []string{"b"}, nil)
	if got := tb.Order.Table("a").Get(Before, rootPid, "b"); got != 1 {
		t.Errorf("moved Before cell = %v, want 1", got)
	}
	if got := tb.Order.Table("a").Get(Before, aPid, "b"); got != 0 {
		t.Errorf("old Before cell = %v, want 0", got)
	}
	tb.Order.MoveCells("a", aPid, rootPid, nil, []string{"b"})
	if got := tb.Order.Table("a").Get(After, rootPid, "b"); got != 1 {
		t.Errorf("moved After cell = %v, want 1", got)
	}
	if tb.Order.NumCells() != before {
		t.Errorf("NumCells changed: %d != %d", tb.Order.NumCells(), before)
	}
}
