package stats

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"xpathest/internal/bitset"
	"xpathest/internal/guard"
	"xpathest/internal/pathenc"
)

// CollectStream computes the exact statistics tables in two streaming
// passes over serialized XML, without ever materializing the document
// tree — the way a production system would summarize a document too
// large to hold in memory (the paper's DBLP input is 65 MB):
//
//   - pass one discovers the distinct root-to-leaf paths (fixing the
//     path-id width and the encoding table);
//   - pass two assigns path ids bottom-up on a stack of open elements,
//     accumulating the PathId-Frequency table and the Path-Order
//     tables as elements close.
//
// Peak memory is O(max fanout × depth) plus the tables themselves —
// per-sibling (tag, pid) pairs must be buffered until the parent
// closes, because a parent's order cells need its children's final
// path ids.
//
// The opener is invoked once per pass and must return equivalent
// streams (e.g. re-open the same file). The returned Tables carry an
// estimation-only labeling (no per-node labels).
func CollectStream(opener func() (io.ReadCloser, error)) (*Tables, error) {
	//lint:ignore ctxpropagate documented compat wrapper of the pre-hardening API; callers that need cancellation use CollectStreamContext
	return CollectStreamContext(context.Background(), opener, guard.Limits{})
}

// wrapTokenErr classifies a decoder token error: XML syntax errors are
// the document's fault and wrap guard.ErrMalformedDocument; anything
// else (a reader timeout, a canceled body) keeps its own identity so
// the serving layer can map it to the right status.
func wrapTokenErr(op string, err error) error {
	var syn *xml.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("%s: %v: %w", op, err, guard.ErrMalformedDocument)
	}
	return fmt.Errorf("%s: %w", op, err)
}

// ctxCheckEvery is how many decoder tokens the streaming passes
// consume between context-cancellation checks.
const ctxCheckEvery = 1024

// CollectStreamContext is CollectStream under a context and resource
// limits. Both streaming passes honor cancellation at token-loop
// boundaries (errors wrap guard.ErrCanceled) and enforce the depth,
// element-count and byte limits as tokens arrive (errors wrap
// guard.ErrLimitExceeded), so a hostile stream fails fast instead of
// exhausting the collector.
func CollectStreamContext(ctx context.Context, opener func() (io.ReadCloser, error), lim guard.Limits) (*Tables, error) {
	// Pass one: the encoding table.
	r1, err := opener()
	if err != nil {
		return nil, err
	}
	paths, err := streamPaths(ctx, r1, lim)
	closeErr := r1.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	table, err := pathenc.NewTable(paths)
	if err != nil {
		return nil, err
	}

	// Pass two: path ids and both tables.
	r2, err := opener()
	if err != nil {
		return nil, err
	}
	tables, err := streamTables(ctx, r2, table, lim)
	closeErr = r2.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	return tables, nil
}

// streamGuard tracks the per-pass limit state shared by both streaming
// passes: token cadence for context checks, element count and consumed
// bytes.
type streamGuard struct {
	ctx      context.Context
	lim      guard.Limits
	cr       *countingReader
	pass     int
	tokens   int
	elements int
}

// token accounts one decoder token; open accounts one element start at
// the given depth.
func (g *streamGuard) token() error {
	g.tokens++
	if g.tokens%ctxCheckEvery == 0 {
		if err := guard.CheckContext(g.ctx); err != nil {
			return fmt.Errorf("stats: stream pass %d: %w", g.pass, err)
		}
	}
	if err := g.lim.CheckDocumentBytes(g.cr.n); err != nil {
		return fmt.Errorf("stats: stream pass %d: %w", g.pass, err)
	}
	return nil
}

func (g *streamGuard) open(depth int) error {
	g.elements++
	if err := g.lim.CheckDepth(depth); err != nil {
		return fmt.Errorf("stats: stream pass %d: %w", g.pass, err)
	}
	if err := g.lim.CheckElements(g.elements); err != nil {
		return fmt.Errorf("stats: stream pass %d: %w", g.pass, err)
	}
	return nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// streamPaths collects distinct root-to-leaf tag paths in first-
// occurrence document order (matching pathenc.Build).
func streamPaths(ctx context.Context, r io.Reader, lim guard.Limits) ([]string, error) {
	cr := &countingReader{r: r}
	g := &streamGuard{ctx: ctx, lim: lim, cr: cr, pass: 1}
	dec := xml.NewDecoder(cr)
	var (
		stack      []string
		hasChild   []bool
		paths      []string
		seen       = map[string]bool{}
		rootClosed bool
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, wrapTokenErr("stats: stream pass 1", err)
		}
		if err := g.token(); err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) == 0 && rootClosed {
				return nil, fmt.Errorf("stats: multiple root elements: %w", guard.ErrMalformedDocument)
			}
			if len(stack) > 0 {
				hasChild[len(hasChild)-1] = true
			}
			stack = append(stack, t.Name.Local)
			hasChild = append(hasChild, false)
			if err := g.open(len(stack)); err != nil {
				return nil, err
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("stats: unbalanced end element %q: %w", t.Name.Local, guard.ErrMalformedDocument)
			}
			if !hasChild[len(hasChild)-1] {
				p := strings.Join(stack, "/")
				if !seen[p] {
					seen[p] = true
					paths = append(paths, p)
				}
			}
			stack = stack[:len(stack)-1]
			hasChild = hasChild[:len(hasChild)-1]
			if len(stack) == 0 {
				rootClosed = true
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("stats: unclosed element %q: %w", stack[len(stack)-1], guard.ErrMalformedDocument)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("stats: document has no element: %w", guard.ErrMalformedDocument)
	}
	return paths, nil
}

// childEntry is a closed child buffered in its parent's frame.
type childEntry struct {
	tag string
	pid *bitset.Bitset
}

// frame is one open element during pass two.
type frame struct {
	tag      string
	pid      *bitset.Bitset // or-accumulator; nil until a child closes
	children []childEntry
}

func streamTables(ctx context.Context, r io.Reader, table *pathenc.Table, lim guard.Limits) (*Tables, error) {
	cr := &countingReader{r: r}
	r = cr
	g := &streamGuard{ctx: ctx, lim: lim, cr: cr, pass: 2}
	lab := pathenc.EstimationLabeling(table, nil)
	freq := &FreqTable{byTag: make(map[string][]PidFreq)}
	freqIdx := make(map[string]map[string]int)
	order := &OrderTables{byTag: make(map[string]*OrderTable)}
	width := table.NumPaths()

	addFreq := func(tag string, pid *bitset.Bitset) {
		m, ok := freqIdx[tag]
		if !ok {
			m = make(map[string]int)
			freqIdx[tag] = m
		}
		key := pid.Key()
		if i, ok := m[key]; ok {
			freq.byTag[tag][i].Freq++
			return
		}
		m[key] = len(freq.byTag[tag])
		freq.byTag[tag] = append(freq.byTag[tag], PidFreq{Pid: pid, Freq: 1})
	}

	// addOrder replays the CollectOrder sweep over one closed sibling
	// list.
	addOrder := func(kids []childEntry) {
		if len(kids) < 2 {
			return
		}
		remaining := map[string]int{}
		for _, c := range kids {
			remaining[c.tag]++
		}
		seen := map[string]int{}
		for _, c := range kids {
			remaining[c.tag]--
			tbl := order.byTag[c.tag]
			if tbl == nil {
				tbl = newOrderTable(c.tag)
				order.byTag[c.tag] = tbl
			}
			for tag, cnt := range remaining {
				if cnt > 0 {
					tbl.add(Before, c.pid, tag)
				}
			}
			for tag, cnt := range seen {
				if cnt > 0 {
					tbl.add(After, c.pid, tag)
				}
			}
			seen[c.tag]++
		}
	}

	dec := xml.NewDecoder(r)
	var stack []*frame
	rootClosed := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, wrapTokenErr("stats: stream pass 2", err)
		}
		if err := g.token(); err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) == 0 && rootClosed {
				return nil, fmt.Errorf("stats: multiple root elements: %w", guard.ErrMalformedDocument)
			}
			stack = append(stack, &frame{tag: t.Name.Local})
			if err := g.open(len(stack)); err != nil {
				return nil, err
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("stats: unbalanced end element %q: %w", t.Name.Local, guard.ErrMalformedDocument)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]

			var pid *bitset.Bitset
			if f.pid == nil {
				// Leaf: its root-to-leaf path must be in the table.
				var sb strings.Builder
				for _, fr := range stack {
					sb.WriteString(fr.tag)
					sb.WriteByte('/')
				}
				sb.WriteString(f.tag)
				enc := table.Encoding(sb.String())
				if enc == 0 {
					return nil, fmt.Errorf("stats: pass 2 saw unknown path %q (streams differ between passes?): %w", sb.String(), guard.ErrInvalidArgument)
				}
				pid = bitset.New(width)
				pid.Set(enc)
			} else {
				pid = f.pid
			}
			pid = lab.Intern(pid)
			addFreq(f.tag, pid)
			addOrder(f.children)
			f.children = nil

			if len(stack) == 0 {
				rootClosed = true
				continue
			}
			p := stack[len(stack)-1]
			if p.pid == nil {
				p.pid = pid.Clone()
			} else {
				p.pid.Or(pid)
			}
			p.children = append(p.children, childEntry{tag: f.tag, pid: pid})
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("stats: unclosed element %q: %w", stack[len(stack)-1].tag, guard.ErrMalformedDocument)
	}
	if !rootClosed {
		return nil, fmt.Errorf("stats: document has no element: %w", guard.ErrMalformedDocument)
	}
	return &Tables{Labeling: lab, Freq: freq, Order: order}, nil
}
