package stats

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xpathest/internal/datagen"
	"xpathest/internal/paperfig"
	"xpathest/internal/xmltree"
)

// openerFor returns an opener over an in-memory XML serialization.
func openerFor(t testing.TB, doc *xmltree.Document) func() (io.ReadCloser, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf, false); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(data)), nil
	}
}

// assertTablesEqual compares streamed tables against tree-collected
// ones cell by cell.
func assertTablesEqual(t *testing.T, want, got *Tables) {
	t.Helper()
	// Encoding tables.
	if got.Labeling.Table.NumPaths() != want.Labeling.Table.NumPaths() {
		t.Fatalf("paths: %d vs %d", got.Labeling.Table.NumPaths(), want.Labeling.Table.NumPaths())
	}
	for i := 1; i <= want.Labeling.Table.NumPaths(); i++ {
		if got.Labeling.Table.Path(i) != want.Labeling.Table.Path(i) {
			t.Fatalf("path %d: %q vs %q", i, got.Labeling.Table.Path(i), want.Labeling.Table.Path(i))
		}
	}
	if got.Labeling.NumDistinct() != want.Labeling.NumDistinct() {
		t.Fatalf("distinct pids: %d vs %d", got.Labeling.NumDistinct(), want.Labeling.NumDistinct())
	}

	// Frequency tables.
	wt, gt := want.Freq.Tags(), got.Freq.Tags()
	if strings.Join(wt, ",") != strings.Join(gt, ",") {
		t.Fatalf("tags: %v vs %v", gt, wt)
	}
	for _, tag := range wt {
		we, ge := want.Freq.Entries(tag), got.Freq.Entries(tag)
		if len(we) != len(ge) {
			t.Fatalf("%s: %d vs %d entries", tag, len(ge), len(we))
		}
		// First-occurrence order differs between preorder (tree) and
		// postorder (stream) collection when tags recurse; compare as
		// sets — downstream histograms sort by frequency anyway.
		wm := map[string]float64{}
		for _, e := range we {
			wm[e.Pid.Key()] = e.Freq
		}
		for _, e := range ge {
			if wm[e.Pid.Key()] != e.Freq {
				t.Fatalf("%s pid %s: %v vs %v", tag, e.Pid, e.Freq, wm[e.Pid.Key()])
			}
		}
	}

	// Order tables.
	if got.Order.NumCells() != want.Order.NumCells() {
		t.Fatalf("order cells: %d vs %d", got.Order.NumCells(), want.Order.NumCells())
	}
	for _, tag := range want.Order.Tags() {
		wTab, gTab := want.Order.Table(tag), got.Order.Table(tag)
		if gTab == nil {
			t.Fatalf("missing order table for %s", tag)
		}
		for _, cell := range wTab.Cells() {
			if g := gTab.Get(cell.Region, cell.Pid, cell.SibTag); g != cell.Count {
				t.Fatalf("%s g(%s,%s) %v: %v vs %v", tag, cell.Pid, cell.SibTag, cell.Region, g, cell.Count)
			}
		}
	}
}

func TestStreamMatchesTreeFigure1(t *testing.T) {
	doc := paperfig.Doc()
	want := Collect(doc, nil)
	got, err := CollectStream(openerFor(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	assertTablesEqual(t, want, got)
}

func TestStreamMatchesTreeDatasets(t *testing.T) {
	for _, ds := range datagen.Datasets() {
		t.Run(ds.Name, func(t *testing.T) {
			doc := ds.Gen(datagen.Config{Seed: 9, Scale: 0.01})
			want := Collect(doc, nil)
			got, err := CollectStream(openerFor(t, doc))
			if err != nil {
				t.Fatal(err)
			}
			assertTablesEqual(t, want, got)
		})
	}
}

func TestStreamErrors(t *testing.T) {
	bad := func(xml string) func() (io.ReadCloser, error) {
		return func() (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader(xml)), nil
		}
	}
	for _, c := range []string{
		"",
		"<a><b></b>",
		"<a></b>",
		"<a/><b/>",
		"<!-- nothing -->",
	} {
		if _, err := CollectStream(bad(c)); err == nil {
			t.Errorf("CollectStream(%q) succeeded", c)
		}
	}
	// Opener failure propagates.
	fail := func() (io.ReadCloser, error) { return nil, io.ErrUnexpectedEOF }
	if _, err := CollectStream(fail); err == nil {
		t.Error("opener error swallowed")
	}
	// Differing streams between passes are detected.
	calls := 0
	flaky := func() (io.ReadCloser, error) {
		calls++
		if calls == 1 {
			return io.NopCloser(strings.NewReader("<a><b/></a>")), nil
		}
		return io.NopCloser(strings.NewReader("<a><c/></a>")), nil
	}
	if _, err := CollectStream(flaky); err == nil {
		t.Error("differing passes not detected")
	}
}

// Property: streaming and tree-based collection agree on random
// documents.
func TestQuickStreamEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(150))
		want := Collect(doc, nil)

		var buf bytes.Buffer
		if err := doc.WriteXML(&buf, false); err != nil {
			return false
		}
		data := buf.Bytes()
		got, err := CollectStream(func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		})
		if err != nil {
			return false
		}
		if got.Labeling.NumDistinct() != want.Labeling.NumDistinct() {
			return false
		}
		if got.Order.NumCells() != want.Order.NumCells() {
			return false
		}
		for _, tag := range want.Freq.Tags() {
			we, ge := want.Freq.Entries(tag), got.Freq.Entries(tag)
			if len(we) != len(ge) {
				return false
			}
			wm := map[string]float64{}
			for _, e := range we {
				wm[e.Pid.Key()] = e.Freq
			}
			for _, e := range ge {
				if wm[e.Pid.Key()] != e.Freq {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCollectStream(b *testing.B) {
	doc := datagen.SSPlays(datagen.Config{Seed: 1, Scale: 0.02})
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf, false); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CollectStream(func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(data)), nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
