// Package stats collects the two statistics of Section 3 of the paper
// from a labeled document:
//
//   - the PathId-Frequency table (Figure 2(a)): for every distinct
//     element tag, the distinct path ids it occurs with and their
//     frequencies;
//   - one Path-Order table per tag (Figure 2(b)): a grid over
//     (path id of the tag, sibling tag) with two regions — "+element"
//     counts elements of the tag occurring *before* a sibling with the
//     other tag, "element+" counts those occurring *after* one.
//
// These exact tables are what the p-histogram and o-histogram of
// Section 6 summarize, and what the estimator of Sections 4–5 reads
// (either directly, for variance 0, or through the histograms).
package stats

import (
	"sort"

	"xpathest/internal/bitset"
	"xpathest/internal/pathenc"
	"xpathest/internal/xmltree"
)

// PidFreq is one (path id, frequency) entry of the PathId-Frequency
// table. Frequency is a float64 because histogram lookups return
// bucket averages; exact collection always stores whole numbers.
type PidFreq struct {
	Pid  *bitset.Bitset
	Freq float64
}

// FreqTable is the PathId-Frequency table of the whole document.
type FreqTable struct {
	byTag map[string][]PidFreq
}

// Tags returns the element tags present, sorted.
func (t *FreqTable) Tags() []string {
	out := make([]string, 0, len(t.byTag))
	for tag := range t.byTag {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// Entries returns the (pid, frequency) list of a tag in first-
// occurrence document order, or nil for an unknown tag. The slice must
// not be modified.
func (t *FreqTable) Entries(tag string) []PidFreq { return t.byTag[tag] }

// NumEntries returns the total number of (tag, pid) pairs.
func (t *FreqTable) NumEntries() int {
	n := 0
	for _, e := range t.byTag {
		n += len(e)
	}
	return n
}

// CollectFreq builds the PathId-Frequency table in one document walk.
func CollectFreq(doc *xmltree.Document, l *pathenc.Labeling) *FreqTable {
	pos := make(map[string]map[string]int) // tag -> pid key -> index
	t := &FreqTable{byTag: make(map[string][]PidFreq)}
	doc.Walk(func(n *xmltree.Node) bool {
		pid := l.PidOf(n)
		m, ok := pos[n.Tag]
		if !ok {
			m = make(map[string]int)
			pos[n.Tag] = m
		}
		key := pid.Key()
		if i, ok := m[key]; ok {
			t.byTag[n.Tag][i].Freq++
		} else {
			m[key] = len(t.byTag[n.Tag])
			t.byTag[n.Tag] = append(t.byTag[n.Tag], PidFreq{Pid: pid, Freq: 1})
		}
		return true
	})
	return t
}

// SizeBytes estimates the storage of the exact table: one pid
// reference plus a 4-byte count per entry, plus a tag directory.
func (t *FreqTable) SizeBytes(pidRefBytes int) int {
	n := 0
	for tag, e := range t.byTag {
		n += len(tag) + 2 // tag directory entry
		n += len(e) * (pidRefBytes + 4)
	}
	return n
}

// Region selects one of the two halves of a path-order table.
type Region int

const (
	// Before is the "+element" region: the tag occurs before a sibling
	// with the other tag.
	Before Region = iota
	// After is the "element+" region: the tag occurs after one.
	After
)

func (r Region) String() string {
	if r == Before {
		return "+element"
	}
	return "element+"
}

// OrderTable is the path-order table of one element tag X. A cell
// g(pid, Y) in region Before counts the X elements labeled pid that
// have at least one following sibling tagged Y; in region After, at
// least one preceding sibling tagged Y. An X element occurring both
// before and after Y elements is counted in both regions (Section 3).
type OrderTable struct {
	Tag   string
	cells map[Region]map[string]map[string]float64 // region -> pid key -> sibling tag -> count
	pids  map[string]*bitset.Bitset                // pid key -> pid

	// cellsByPid mirrors cells keyed by the interned pid instance
	// (sharing the same inner maps), so the per-probe Get on the
	// estimator's hot path costs a pointer hash instead of a
	// Bitset.Key() string allocation. Path ids are interned during
	// labeling, so every pid collected here — and every pid the
	// estimator probes with — is its canonical instance.
	cellsByPid map[Region]map[*bitset.Bitset]map[string]float64
}

func newOrderTable(tag string) *OrderTable {
	return &OrderTable{
		Tag: tag,
		cells: map[Region]map[string]map[string]float64{
			Before: make(map[string]map[string]float64),
			After:  make(map[string]map[string]float64),
		},
		pids: make(map[string]*bitset.Bitset),
		cellsByPid: map[Region]map[*bitset.Bitset]map[string]float64{
			Before: make(map[*bitset.Bitset]map[string]float64),
			After:  make(map[*bitset.Bitset]map[string]float64),
		},
	}
}

func (o *OrderTable) add(region Region, pid *bitset.Bitset, sibTag string) {
	key := pid.Key()
	m := o.cells[region][key]
	if m == nil {
		m = make(map[string]float64)
		o.cells[region][key] = m
		o.cellsByPid[region][pid] = m
	}
	m[sibTag]++
	o.pids[key] = pid
}

// Get returns g(pid, sibTag) in the given region; 0 for empty cells.
// The identity-keyed index answers probes with canonical (interned)
// pid instances without allocating; an equal-bits duplicate instance
// falls back to the key-string map.
func (o *OrderTable) Get(region Region, pid *bitset.Bitset, sibTag string) float64 {
	if m := o.cellsByPid[region][pid]; m != nil {
		return m[sibTag]
	}
	m := o.cells[region][pid.Key()]
	if m == nil {
		return 0
	}
	return m[sibTag]
}

// Cell is one non-empty cell of a path-order table, in export form.
type Cell struct {
	Region Region
	Pid    *bitset.Bitset
	SibTag string
	Count  float64
}

// Cells returns all non-empty cells in a deterministic order (region,
// then pid bit-sequence, then sibling tag).
func (o *OrderTable) Cells() []Cell {
	var out []Cell
	for _, region := range []Region{Before, After} {
		for key, m := range o.cells[region] {
			for tag, c := range m {
				out = append(out, Cell{Region: region, Pid: o.pids[key], SibTag: tag, Count: c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if s1, s2 := a.Pid.String(), b.Pid.String(); s1 != s2 {
			return s1 < s2
		}
		return a.SibTag < b.SibTag
	})
	return out
}

// NumCells returns the number of non-empty cells.
func (o *OrderTable) NumCells() int {
	n := 0
	for _, region := range []Region{Before, After} {
		for _, m := range o.cells[region] {
			n += len(m)
		}
	}
	return n
}

// Pids returns the distinct pids appearing in the table, sorted by bit
// sequence.
func (o *OrderTable) Pids() []*bitset.Bitset {
	out := make([]*bitset.Bitset, 0, len(o.pids))
	for _, p := range o.pids {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SibTags returns the distinct sibling tags appearing in the table,
// sorted alphabetically (the row order of Algorithm 2).
func (o *OrderTable) SibTags() []string {
	set := map[string]bool{}
	for _, region := range []Region{Before, After} {
		for _, m := range o.cells[region] {
			for tag := range m {
				set[tag] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for tag := range set {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// OrderTables holds the path-order table of every tag.
type OrderTables struct {
	byTag map[string]*OrderTable
}

// Table returns the path-order table of a tag, or nil.
func (ts *OrderTables) Table(tag string) *OrderTable { return ts.byTag[tag] }

// Tags returns the tags that have at least one non-empty cell, sorted.
func (ts *OrderTables) Tags() []string {
	out := make([]string, 0, len(ts.byTag))
	for tag := range ts.byTag {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// NumCells returns the total number of non-empty cells across tables.
func (ts *OrderTables) NumCells() int {
	n := 0
	for _, t := range ts.byTag {
		n += t.NumCells()
	}
	return n
}

// SizeBytes estimates exact storage: per non-empty cell one pid
// reference, a 2-byte tag reference and a 4-byte count.
func (ts *OrderTables) SizeBytes(pidRefBytes int) int {
	return ts.NumCells() * (pidRefBytes + 2 + 4)
}

// CollectOrder builds every path-order table in one walk. For each
// sibling group it sweeps left to right, maintaining per-tag counts of
// siblings strictly before and strictly after the current child, and
// marks the child in the Before region for every tag still to come and
// in the After region for every tag already seen. Same-tag siblings
// are counted like any other tag (the paper's definition does not
// exclude Y = X, and queries such as q1[/B/folls::B] need the cells).
func CollectOrder(doc *xmltree.Document, l *pathenc.Labeling) *OrderTables {
	ts := &OrderTables{byTag: make(map[string]*OrderTable)}
	doc.Walk(func(parent *xmltree.Node) bool {
		kids := parent.Children
		if len(kids) < 2 {
			return true
		}
		remaining := map[string]int{}
		for _, c := range kids {
			remaining[c.Tag]++
		}
		seen := map[string]int{}
		for _, c := range kids {
			remaining[c.Tag]--
			tbl := ts.byTag[c.Tag]
			if tbl == nil {
				tbl = newOrderTable(c.Tag)
				ts.byTag[c.Tag] = tbl
			}
			pid := l.PidOf(c)
			for tag, cnt := range remaining {
				if cnt > 0 {
					tbl.add(Before, pid, tag)
				}
			}
			for tag, cnt := range seen {
				if cnt > 0 {
					tbl.add(After, pid, tag)
				}
			}
			seen[c.Tag]++
		}
		return true
	})
	return ts
}

// Tables bundles a document's labeling with both exact statistics.
type Tables struct {
	Labeling *pathenc.Labeling
	Freq     *FreqTable
	Order    *OrderTables
}

// Collect labels the document (if l is nil) and gathers both tables.
// A nil l is a convenience for in-process documents; it labels via
// pathenc.MustBuild. Input-facing callers label explicitly with
// pathenc.Build and pass the result in.
func Collect(doc *xmltree.Document, l *pathenc.Labeling) *Tables {
	if l == nil {
		l = pathenc.MustBuild(doc)
	}
	return &Tables{
		Labeling: l,
		Freq:     CollectFreq(doc, l),
		Order:    CollectOrder(doc, l),
	}
}
