package stats

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpathest/internal/bitset"
	"xpathest/internal/paperfig"
	"xpathest/internal/pathenc"
	"xpathest/internal/xmltree"
)

func collectFigure1(t testing.TB) *Tables {
	t.Helper()
	return Collect(paperfig.Doc(), nil)
}

// TestFreqTableFigure2a pins the PathId-Frequency table of Figure 2(a).
func TestFreqTableFigure2a(t *testing.T) {
	tb := collectFigure1(t)
	want := map[string]map[string]float64{
		"Root": {"1111": 1},
		"A":    {"1010": 1, "1011": 1, "1100": 1},
		"B":    {"1100": 1, "1000": 3},
		"C":    {"0010": 1, "0011": 1},
		"D":    {"1000": 4},
		"E":    {"0100": 1, "0010": 2},
		"F":    {"0001": 1},
	}
	got := map[string]map[string]float64{}
	for _, tag := range tb.Freq.Tags() {
		got[tag] = map[string]float64{}
		for _, e := range tb.Freq.Entries(tag) {
			got[tag][e.Pid.String()] += e.Freq
		}
	}
	for tag, wantPids := range want {
		for pid, freq := range wantPids {
			if got[tag][pid] != freq {
				t.Errorf("Freq[%s][%s] = %v, want %v", tag, pid, got[tag][pid], freq)
			}
		}
		if len(got[tag]) != len(wantPids) {
			t.Errorf("tag %s has entries %v, want %v", tag, got[tag], wantPids)
		}
	}
	if len(got) != len(want) {
		t.Errorf("tags = %v, want %v", tb.Freq.Tags(), want)
	}
	// 12 (tag, pid) pairs in total.
	if n := tb.Freq.NumEntries(); n != 12 {
		t.Errorf("NumEntries = %d, want 12", n)
	}
}

// TestOrderTableFigure2b pins the path-order table for B of
// Figure 2(b): one B with p5 occurs before C, two occur after C.
func TestOrderTableFigure2b(t *testing.T) {
	tb := collectFigure1(t)
	b := tb.Order.Table("B")
	if b == nil {
		t.Fatal("no order table for B")
	}
	p5 := bitset.MustFromString("1000")
	p8 := bitset.MustFromString("1100")

	if got := b.Get(Before, p5, "C"); got != 1 {
		t.Errorf("g(p5, C) in +element = %v, want 1", got)
	}
	if got := b.Get(After, p5, "C"); got != 2 {
		t.Errorf("g(p5, C) in element+ = %v, want 2", got)
	}
	// B with p8 is an only child: it has no sibling cells at all.
	for _, region := range []Region{Before, After} {
		for _, tag := range []string{"A", "B", "C", "D", "E", "F", "Root"} {
			if got := b.Get(region, p8, tag); got != 0 {
				t.Errorf("g(p8, %s) in %v = %v, want 0", tag, region, got)
			}
		}
	}
	// Same-tag cells: within A2 the first B(p5) precedes the second.
	if got := b.Get(Before, p5, "B"); got != 1 {
		t.Errorf("g(p5, B) in +element = %v, want 1", got)
	}
	if got := b.Get(After, p5, "B"); got != 1 {
		t.Errorf("g(p5, B) in element+ = %v, want 1", got)
	}
}

func TestOrderTableOtherTags(t *testing.T) {
	tb := collectFigure1(t)
	p2 := bitset.MustFromString("0010")
	p1 := bitset.MustFromString("0001")
	p5 := bitset.MustFromString("1000")
	p4 := bitset.MustFromString("0100")

	// E before F under C(p3) of A2.
	e := tb.Order.Table("E")
	if got := e.Get(Before, p2, "F"); got != 1 {
		t.Errorf("E: g(p2, F) before = %v, want 1", got)
	}
	// F after E.
	f := tb.Order.Table("F")
	if got := f.Get(After, p1, "E"); got != 1 {
		t.Errorf("F: g(p1, E) after = %v, want 1", got)
	}
	// D before E under B(p8) of A1.
	d := tb.Order.Table("D")
	if got := d.Get(Before, p5, "E"); got != 1 {
		t.Errorf("D: g(p5, E) before = %v, want 1", got)
	}
	if got := d.Get(After, p5, "E"); got != 0 {
		t.Errorf("D: g(p5, E) after = %v, want 0", got)
	}
	// E after D in the same group.
	if got := e.Get(After, p4, "D"); got != 1 {
		t.Errorf("E: g(p4, D) after = %v, want 1", got)
	}
	// C sees B both before and after (A2: B,C,B) and before (A3: C,B).
	c := tb.Order.Table("C")
	p3 := bitset.MustFromString("0011")
	if got := c.Get(After, p3, "B"); got != 1 {
		t.Errorf("C: g(p3, B) after = %v, want 1", got)
	}
	if got := c.Get(Before, p3, "B"); got != 1 {
		t.Errorf("C: g(p3, B) before = %v, want 1", got)
	}
	if got := c.Get(Before, p2, "B"); got != 1 {
		t.Errorf("C: g(p2, B) before = %v, want 1", got)
	}
}

// The three A siblings under Root all share the tag A: same-tag order
// cells must appear for A.
func TestOrderTableRootChildren(t *testing.T) {
	tb := collectFigure1(t)
	a := tb.Order.Table("A")
	if a == nil {
		t.Fatal("no order table for A")
	}
	p8 := bitset.MustFromString("1100")
	p7 := bitset.MustFromString("1011")
	p6 := bitset.MustFromString("1010")
	if got := a.Get(Before, p8, "A"); got != 1 {
		t.Errorf("A: g(p8, A) before = %v", got)
	}
	if got := a.Get(Before, p7, "A"); got != 1 {
		t.Errorf("A: g(p7, A) before = %v", got)
	}
	if got := a.Get(Before, p6, "A"); got != 0 {
		t.Errorf("A: g(p6, A) before = %v (last sibling)", got)
	}
	if got := a.Get(After, p6, "A"); got != 1 {
		t.Errorf("A: g(p6, A) after = %v", got)
	}
}

func TestCellsDeterministic(t *testing.T) {
	tb := collectFigure1(t)
	b := tb.Order.Table("B")
	c1 := b.Cells()
	c2 := b.Cells()
	if len(c1) != len(c2) {
		t.Fatal("Cells not stable")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("Cells order unstable at %d: %v vs %v", i, c1[i], c2[i])
		}
	}
	if b.NumCells() != len(c1) {
		t.Fatalf("NumCells = %d, len(Cells) = %d", b.NumCells(), len(c1))
	}
}

func TestSibTagsAndPids(t *testing.T) {
	tb := collectFigure1(t)
	b := tb.Order.Table("B")
	tags := b.SibTags()
	want := []string{"B", "C"}
	if len(tags) != len(want) {
		t.Fatalf("SibTags = %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("SibTags = %v, want %v", tags, want)
		}
	}
	pids := b.Pids()
	if len(pids) != 1 || pids[0].String() != "1000" {
		t.Fatalf("Pids = %v, want [1000]", pids)
	}
}

func TestSizes(t *testing.T) {
	tb := collectFigure1(t)
	if tb.Freq.SizeBytes(1) <= 0 {
		t.Fatal("FreqTable size must be positive")
	}
	if tb.Order.SizeBytes(1) != tb.Order.NumCells()*7 {
		t.Fatalf("Order SizeBytes = %d, want %d", tb.Order.SizeBytes(1), tb.Order.NumCells()*7)
	}
}

func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	b := xmltree.NewBuilder()
	n := 1
	b.Open("root")
	var grow func(depth int)
	grow = func(depth int) {
		kids := rng.Intn(5)
		for i := 0; i < kids && n < maxNodes; i++ {
			n++
			b.Open(tags[rng.Intn(len(tags))])
			if depth < 5 {
				grow(depth + 1)
			}
			b.Close()
		}
	}
	grow(0)
	b.Close()
	return b.Document()
}

// Property: the frequency table's total mass equals the element count,
// and per-tag mass equals the tag count.
func TestQuickFreqMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(150))
		tb := Collect(doc, nil)
		total := 0.0
		for _, tag := range tb.Freq.Tags() {
			sum := 0.0
			for _, e := range tb.Freq.Entries(tag) {
				sum += e.Freq
			}
			if int(sum) != doc.TagCount(tag) {
				return false
			}
			total += sum
		}
		return int(total) == doc.NumElements()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: order tables agree with a brute-force recount over sibling
// groups.
func TestQuickOrderBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(120))
		l := pathenc.MustBuild(doc)
		got := CollectOrder(doc, l)

		// Brute force: for each child x and tag Y, test siblings.
		want := map[string]float64{} // tag|region|pidkey|sib -> count
		doc.Walk(func(p *xmltree.Node) bool {
			for i, x := range p.Children {
				beforeTags := map[string]bool{}
				afterTags := map[string]bool{}
				for j, y := range p.Children {
					if j < i {
						afterTags[y.Tag] = true // x occurs after y
					} else if j > i {
						beforeTags[y.Tag] = true // x occurs before y
					}
				}
				for tag := range beforeTags {
					want[x.Tag+"|B|"+l.PidOf(x).Key()+"|"+tag]++
				}
				for tag := range afterTags {
					want[x.Tag+"|A|"+l.PidOf(x).Key()+"|"+tag]++
				}
			}
			return true
		})

		// Compare both directions.
		total := 0.0
		for _, tag := range got.Tags() {
			tbl := got.Table(tag)
			for _, cell := range tbl.Cells() {
				r := "B"
				if cell.Region == After {
					r = "A"
				}
				key := tag + "|" + r + "|" + cell.Pid.Key() + "|" + cell.SibTag
				if want[key] != cell.Count {
					return false
				}
				total += cell.Count
			}
		}
		sum := 0.0
		for _, v := range want {
			sum += v
		}
		return total == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetry — the number of (X before Y) incidences summed
// over X's pids equals the number of (Y after X) incidences summed
// over Y's pids, for every ordered tag pair... counted per element, so
// the two counts need not be equal in general (an X before three Ys is
// one incidence). Instead we check the weaker invariant that a Before
// cell for (X, Y) implies an After cell for (Y, X) somewhere.
func TestQuickOrderDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 1+rng.Intn(120))
		tbs := Collect(doc, nil)
		for _, tagX := range tbs.Order.Tags() {
			for _, cell := range tbs.Order.Table(tagX).Cells() {
				if cell.Count <= 0 {
					return false // cells must be non-empty
				}
				other := tbs.Order.Table(cell.SibTag)
				if other == nil {
					return false
				}
				dual := Before
				if cell.Region == Before {
					dual = After
				}
				found := false
				for _, dc := range other.Cells() {
					if dc.Region == dual && dc.SibTag == tagX {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleChildNoOrder(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Open("r").Open("a").Leaf("b", "").Close().Close()
	tb := Collect(b.Document(), nil)
	if n := tb.Order.NumCells(); n != 0 {
		t.Fatalf("single-child chains produced %d order cells", n)
	}
}

func BenchmarkCollect(b *testing.B) {
	doc := paperfig.Doc()
	l := pathenc.MustBuild(doc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Collect(doc, l)
	}
}
