package stats

import (
	"fmt"

	"xpathest/internal/bitset"
)

// Columns is a struct-of-arrays view over (pid, frequency) entries:
// every appended pid's bit-words land back to back in one shared
// Words arena at a fixed stride, with the frequency and the interned
// pid pointer in parallel columns. The estimator's join kernel builds
// one Columns per summary snapshot so its containment sweeps read
// contiguous cache-resident memory instead of chasing *Bitset
// pointers; entry k's row is Words[k*Stride : (k+1)*Stride].
type Columns struct {
	// Stride is the fixed word count per pid row.
	Stride int
	// Words is the shared pid-bit arena, len = Len()*Stride.
	Words []uint64
	// Freqs is the frequency column, parallel to the rows.
	Freqs []float64
	// Pids keeps the interned pid of each row, for identity lookups
	// and for callers that still need the pointer form.
	Pids []*bitset.Bitset
}

// NewColumns returns an empty Columns for pids of the given width,
// preallocating room for n entries. All appended pids must have
// exactly this width.
func NewColumns(width, n int) *Columns {
	stride := (width + 63) / 64
	return &Columns{
		Stride: stride,
		Words:  make([]uint64, 0, n*stride),
		Freqs:  make([]float64, 0, n),
		Pids:   make([]*bitset.Bitset, 0, n),
	}
}

// Append adds one entry's row to every column. The pid's width must
// match the width the Columns was created for — rows of unequal
// stride would silently misalign every later offset, so a mismatch
// panics (a programming error, like bitset's own width checks).
func (c *Columns) Append(e PidFreq) {
	before := len(c.Words)
	c.Words = e.Pid.AppendWords(c.Words)
	if len(c.Words)-before != c.Stride {
		panic(fmt.Sprintf("stats: pid of %d words appended to columns of stride %d", len(c.Words)-before, c.Stride))
	}
	c.Freqs = append(c.Freqs, e.Freq)
	c.Pids = append(c.Pids, e.Pid)
}

// Len returns the number of appended entries.
func (c *Columns) Len() int { return len(c.Pids) }
