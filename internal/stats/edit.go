package stats

import "xpathest/internal/bitset"

// This file holds the in-place mutators the incremental maintenance
// path (package delta) applies after a subtree edit: occurrence deltas
// on the PathId-Frequency table and cell-level adjustments on the
// Path-Order tables. All counts are whole numbers stored as float64,
// so ±1 adjustments reproduce a from-scratch collection bit for bit;
// structures are deleted the moment they empty, keeping the mutated
// tables indistinguishable from freshly collected ones. Every pid
// handed to these mutators must be its canonical interned instance —
// the same assumption CollectFreq/CollectOrder already make.

// NumTags returns the number of tags with at least one entry.
func (t *FreqTable) NumTags() int { return len(t.byTag) }

// AddFreq adjusts the (tag, pid) entry by d occurrences. An absent
// entry is appended at the end of the tag's list (matching the
// first-occurrence append order of CollectFreq when the new occurrence
// is the document's last of its tag); an entry whose count reaches
// zero is removed, and a tag with no entries left disappears.
func (t *FreqTable) AddFreq(tag string, pid *bitset.Bitset, d float64) {
	entries := t.byTag[tag]
	for i := range entries {
		if entries[i].Pid == pid || entries[i].Pid.Equal(pid) {
			entries[i].Freq += d
			if entries[i].Freq == 0 {
				entries = append(entries[:i], entries[i+1:]...)
				if len(entries) == 0 {
					delete(t.byTag, tag)
				} else {
					t.byTag[tag] = entries
				}
			}
			return
		}
	}
	if d > 0 {
		t.byTag[tag] = append(entries, PidFreq{Pid: pid, Freq: d})
	}
}

// AddOrder adjusts g(pid, sibTag) of tag's path-order table by d,
// creating the table and cell structures on first use and deleting
// them as counts vanish, so an incrementally maintained table set is
// structurally identical to a re-collected one.
func (ts *OrderTables) AddOrder(tag string, region Region, pid *bitset.Bitset, sibTag string, d float64) {
	if d == 0 {
		return
	}
	tbl := ts.byTag[tag]
	if tbl == nil {
		tbl = newOrderTable(tag)
		ts.byTag[tag] = tbl
	}
	key := pid.Key()
	m := tbl.cells[region][key]
	if m == nil {
		m = make(map[string]float64)
		tbl.cells[region][key] = m
		tbl.cellsByPid[region][pid] = m
		tbl.pids[key] = pid
	}
	m[sibTag] += d
	if m[sibTag] != 0 {
		return
	}
	delete(m, sibTag)
	if len(m) > 0 {
		return
	}
	delete(tbl.cells[region], key)
	delete(tbl.cellsByPid[region], tbl.pids[key])
	if tbl.cells[Before][key] == nil && tbl.cells[After][key] == nil {
		delete(tbl.pids, key)
	}
	if tbl.NumCells() == 0 {
		delete(ts.byTag, tag)
	}
}

// GroupMember is one child of a sibling group as the order sweep sees
// it: its tag and its (post-edit) path id.
type GroupMember struct {
	Tag string
	Pid *bitset.Bitset
}

// ApplyGroup adds sign times the Path-Order contributions of one
// sibling group, running exactly the left-to-right sweep CollectOrder
// runs per group: each member lands in the Before region for every tag
// still to come and in the After region for every tag already seen.
// With sign -1 it retracts a group's contributions. Groups of fewer
// than two members contribute nothing, mirroring the collector.
func (ts *OrderTables) ApplyGroup(members []GroupMember, sign float64) {
	if len(members) < 2 {
		return
	}
	remaining := map[string]int{}
	for _, m := range members {
		remaining[m.Tag]++
	}
	seen := map[string]int{}
	for _, m := range members {
		remaining[m.Tag]--
		for tag, cnt := range remaining {
			if cnt > 0 {
				ts.AddOrder(m.Tag, Before, m.Pid, tag, sign)
			}
		}
		for tag, cnt := range seen {
			if cnt > 0 {
				ts.AddOrder(m.Tag, After, m.Pid, tag, sign)
			}
		}
		seen[m.Tag]++
	}
}

// MoveCells rewrites every cell of tag's table from oldPid to newPid
// for one element whose pid changed without its sibling surroundings
// changing: beforeTags are the distinct tags of its following
// siblings, afterTags those of its preceding siblings (the tag sets
// the sweep would charge it for).
func (ts *OrderTables) MoveCells(tag string, oldPid, newPid *bitset.Bitset, beforeTags, afterTags []string) {
	for _, t := range beforeTags {
		ts.AddOrder(tag, Before, oldPid, t, -1)
		ts.AddOrder(tag, Before, newPid, t, 1)
	}
	for _, t := range afterTags {
		ts.AddOrder(tag, After, oldPid, t, -1)
		ts.AddOrder(tag, After, newPid, t, 1)
	}
}
