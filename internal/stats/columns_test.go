package stats

import (
	"testing"

	"xpathest/internal/bitset"
)

func TestColumnsLayout(t *testing.T) {
	p1 := bitset.MustFromString("10000000000000000000000000000000000000000000000000000000000000001") // width 65 → stride 2
	p2 := bitset.MustFromString("01000000000000000000000000000000000000000000000000000000000000000")
	c := NewColumns(p1.Width(), 2)
	if c.Stride != 2 {
		t.Fatalf("stride %d, want 2", c.Stride)
	}
	c.Append(PidFreq{Pid: p1, Freq: 3})
	c.Append(PidFreq{Pid: p2, Freq: 5})
	if c.Len() != 2 || len(c.Words) != 4 {
		t.Fatalf("len %d words %d, want 2 entries / 4 words", c.Len(), len(c.Words))
	}
	if c.Freqs[0] != 3 || c.Freqs[1] != 5 || c.Pids[0] != p1 || c.Pids[1] != p2 {
		t.Fatal("parallel columns misaligned")
	}
	// Row 0 must contain itself and not row 1, straight over offsets.
	if !bitset.ContainsWords(c.Words, 0, 0, c.Stride) {
		t.Fatal("row 0 does not contain itself")
	}
	if bitset.ContainsWords(c.Words, 0, c.Stride, c.Stride) {
		t.Fatal("row 0 claims to contain row 1")
	}
}

func TestColumnsWidthMismatchPanics(t *testing.T) {
	c := NewColumns(64, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("appending a wider pid did not panic")
		}
	}()
	c.Append(PidFreq{Pid: bitset.New(65), Freq: 1})
}
