package bitset

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	b := New(9)
	if b.Width() != 9 {
		t.Fatalf("Width = %d, want 9", b.Width())
	}
	if !b.IsZero() {
		t.Fatal("new bitset is not zero")
	}
	if b.Count() != 0 {
		t.Fatalf("Count = %d, want 0", b.Count())
	}
	if got := b.String(); got != "000000000" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromString(t *testing.T) {
	b, err := FromString("1011")
	if err != nil {
		t.Fatal(err)
	}
	if b.Width() != 4 {
		t.Fatalf("Width = %d", b.Width())
	}
	want := []bool{true, false, true, true}
	for i, w := range want {
		if b.Test(i+1) != w {
			t.Errorf("Test(%d) = %v, want %v", i+1, b.Test(i+1), w)
		}
	}
	if b.String() != "1011" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestFromStringInvalid(t *testing.T) {
	if _, err := FromString("10x1"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestMustFromStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromString did not panic")
		}
	}()
	MustFromString("2")
}

func TestSetClearTest(t *testing.T) {
	b := New(130) // spans three words
	for _, pos := range []int{1, 64, 65, 128, 129, 130} {
		b.Set(pos)
		if !b.Test(pos) {
			t.Errorf("Test(%d) false after Set", pos)
		}
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("Test(64) true after Clear")
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(4)
	for _, pos := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", pos)
				}
			}()
			b.Set(pos)
		}()
	}
}

// TestPaperFigure1 pins the path-id algebra on the actual ids of
// Figure 1(c): p1=0001 ... p9=1111.
func TestPaperFigure1(t *testing.T) {
	p1 := MustFromString("0001")
	p2 := MustFromString("0010")
	p3 := MustFromString("0011")
	p5 := MustFromString("1000")
	p8 := MustFromString("1100")
	p9 := MustFromString("1111")

	// p3 = p1 | p2 (C's pid is the or of its children E and F).
	or := p1.Clone()
	or.Or(p2)
	if !or.Equal(p3) {
		t.Fatalf("p1|p2 = %s, want %s", or, p3)
	}

	// Example 2.3: p3 contains p2.
	if !p3.Contains(p2) {
		t.Error("p3 should contain p2")
	}
	if p2.Contains(p3) {
		t.Error("p2 must not contain p3")
	}
	// Containment is strict: p3 does not Contain itself.
	if p3.Contains(p3) {
		t.Error("Contains must be strict")
	}
	if !p3.ContainsOrEqual(p3) {
		t.Error("ContainsOrEqual must be reflexive")
	}
	// p8 (1100) does not contain p3 (0011).
	if p8.Contains(p3) || p8.ContainsOrEqual(p3) {
		t.Error("p8 must not contain p3")
	}
	// Root's pid contains every other pid.
	for _, p := range []*Bitset{p1, p2, p3, p5, p8} {
		if !p9.Contains(p) {
			t.Errorf("p9 should contain %s", p)
		}
	}

	if got := p8.Ones(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("p8.Ones = %v, want [1 2]", got)
	}
	if p5.FirstOne() != 1 {
		t.Fatalf("p5.FirstOne = %d", p5.FirstOne())
	}
	if p2.FirstOne() != 3 {
		t.Fatalf("p2.FirstOne = %d", p2.FirstOne())
	}
}

func TestAndAndNot(t *testing.T) {
	a := MustFromString("1101")
	b := MustFromString("1011")
	and := a.Clone()
	and.And(b)
	if and.String() != "1001" {
		t.Fatalf("And = %s", and)
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.String() != "0100" {
		t.Fatalf("AndNot = %s", diff)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(4), New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched widths did not panic")
		}
	}()
	a.Or(b)
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromString("1010")
	c := a.Clone()
	c.Set(2)
	if a.Test(2) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(2) || !c.Test(1) {
		t.Fatal("Clone lost bits")
	}
}

func TestEqualDifferentWidth(t *testing.T) {
	if New(4).Equal(New(5)) {
		t.Fatal("bitsets of different widths compare equal")
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		width := 1 + rng.Intn(200)
		b := New(width)
		for pos := 1; pos <= width; pos++ {
			if rng.Intn(2) == 1 {
				b.Set(pos)
			}
		}
		k := b.Key()
		if prev, ok := seen[k]; ok && prev != b.String()+"#"+itoa(width) {
			t.Fatalf("key collision: %q vs %q", prev, b.String())
		}
		seen[k] = b.String() + "#" + itoa(width)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var sb []byte
	for n > 0 {
		sb = append([]byte{byte('0' + n%10)}, sb...)
		n /= 10
	}
	return string(sb)
}

func TestKeyWidthSensitive(t *testing.T) {
	a := New(8) // all zero, width 8
	b := New(16)
	if a.Key() == b.Key() {
		t.Fatal("keys of different-width zero sets collide")
	}
}

func TestSizeBytes(t *testing.T) {
	cases := []struct{ width, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {40, 5}, {87, 11}, {344, 43},
	}
	// The 40/5, 87/11 and 344/43 rows are exactly Table 3 of the paper
	// (distinct paths vs pid size in bytes).
	for _, c := range cases {
		if got := New(c.width).SizeBytes(); got != c.want {
			t.Errorf("SizeBytes(width=%d) = %d, want %d", c.width, got, c.want)
		}
	}
}

func TestOnesLargeWidth(t *testing.T) {
	b := New(300)
	want := []int{1, 63, 64, 65, 127, 128, 129, 200, 300}
	for _, p := range want {
		b.Set(p)
	}
	if got := b.Ones(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Ones = %v, want %v", got, want)
	}
}

func TestFirstOneEmpty(t *testing.T) {
	if New(77).FirstOne() != 0 {
		t.Fatal("FirstOne on empty set should be 0")
	}
}

// randomBitset builds a bitset of the given width from a random source.
func randomBitset(rng *rand.Rand, width int) *Bitset {
	b := New(width)
	for pos := 1; pos <= width; pos++ {
		if rng.Intn(2) == 1 {
			b.Set(pos)
		}
	}
	return b
}

// Property: Or is commutative, associative, idempotent; And distributes
// over Or; containment follows from Or.
func TestQuickAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, w uint8) bool {
		width := int(w%120) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomBitset(rng, width), randomBitset(rng, width), randomBitset(rng, width)

		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		if !ab.Equal(ba) {
			return false // commutativity
		}

		abc1 := ab.Clone()
		abc1.Or(c)
		bc := b.Clone()
		bc.Or(c)
		abc2 := a.Clone()
		abc2.Or(bc)
		if !abc1.Equal(abc2) {
			return false // associativity
		}

		aa := a.Clone()
		aa.Or(a)
		if !aa.Equal(a) {
			return false // idempotence
		}

		// (a|b) ContainsOrEqual a and b — the labeling invariant: a
		// parent's pid contains each child's pid.
		if !ab.ContainsOrEqual(a) || !ab.ContainsOrEqual(b) {
			return false
		}

		// And-distributivity: a & (b|c) == (a&b) | (a&c)
		left := a.Clone()
		left.And(bc)
		r1 := a.Clone()
		r1.And(b)
		r2 := a.Clone()
		r2.And(c)
		r1.Or(r2)
		return left.Equal(r1)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: String/FromString round-trips.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w%150) + 1
		rng := rand.New(rand.NewSource(seed))
		b := randomBitset(rng, width)
		r, err := FromString(b.String())
		if err != nil {
			return false
		}
		return r.Equal(b) && r.Key() == b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ones and Count agree, and Set(pos) for each reported one
// reconstructs the set.
func TestQuickOnesReconstruction(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w%150) + 1
		rng := rand.New(rand.NewSource(seed))
		b := randomBitset(rng, width)
		ones := b.Ones()
		if len(ones) != b.Count() {
			return false
		}
		r := New(width)
		for _, pos := range ones {
			r.Set(pos)
		}
		return r.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: strict containment is a partial order (irreflexive,
// antisymmetric, transitive) on random triples.
func TestQuickContainmentPartialOrder(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		width := int(w%100) + 1
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomBitset(rng, width), randomBitset(rng, width), randomBitset(rng, width)
		if a.Contains(a) {
			return false
		}
		if a.Contains(b) && b.Contains(a) {
			return false
		}
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringAllocatesOnce(t *testing.T) {
	b := MustFromString(strings.Repeat("10", 64))
	allocs := testing.AllocsPerRun(100, func() { _ = b.String() })
	if allocs > 2 {
		t.Fatalf("String allocates %v times per run", allocs)
	}
}

func BenchmarkOr(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomBitset(rng, 344) // XMark-sized pid
	y := randomBitset(rng, 344)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Or(y)
	}
}

func BenchmarkContainsOrEqual(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomBitset(rng, 344)
	y := x.Clone()
	y.And(randomBitset(rng, 344))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.ContainsOrEqual(y) {
			b.Fatal("containment lost")
		}
	}
}

// benchArena builds a word arena of n rows at the given stride, with
// row 0 set to all-ones so containment sweeps cannot short-circuit on
// the first candidate.
func benchArena(rng *rand.Rand, n, stride int) ([]uint64, []int32) {
	arena := make([]uint64, n*stride)
	for i := range arena {
		arena[i] = rng.Uint64()
	}
	for i := 0; i < stride; i++ {
		arena[i] = ^uint64(0)
	}
	idxs := make([]int32, n)
	for i := range idxs {
		idxs[i] = int32(i)
	}
	return arena, idxs
}

// BenchmarkContainsWords is the ns/op face of perfgate's flagship pin
// (inline noescape bce<=0 in perf-manifest.txt): the word loop the
// whole containment family inlines.
func BenchmarkContainsWords(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const stride = 6 // XMark-sized pid: 344 bits
	arena, _ := benchArena(rng, 64, stride)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !ContainsWords(arena, 0, (i%63+1)*stride, stride) {
			b.Fatal("all-ones row lost containment")
		}
	}
}

// BenchmarkContainsAnyWords drives the ancestor-side pruning sweep the
// join kernel spends its time in; its bce<=5 manifest ceiling counts
// ContainsWords' prologue checks attributed to the in-loop call site.
func BenchmarkContainsAnyWords(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const stride = 6
	arena, idxs := benchArena(rng, 64, stride)
	// Drop the all-ones row from the candidates: the sweep then scans
	// every candidate before failing, the worst case.
	miss := idxs[1:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !ContainsAnyWords(arena, 0, stride, idxs) {
			b.Fatal("all-ones candidate not found")
		}
		if ContainsAnyWords(arena, stride, stride, miss) && i < 0 {
			b.Fatal("unreachable: keeps the miss sweep live")
		}
	}
}
