// Package bitset provides fixed-width bit sequences used as path ids in
// the path encoding scheme of Li, Lee and Hsu (XSym 2005), which the
// ICDE 2006 estimation system builds on.
//
// A path id over an XML document with n distinct root-to-leaf paths is a
// sequence of n bits; bit i (counted from the left, 1-based, matching
// the paper's presentation) is set when the element occurs on the path
// whose encoding is i. The package implements the bit-or aggregation
// used during labeling and the bit-and containment test of Section 2 of
// the paper.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-width sequence of bits. The zero value is a
// zero-width bitset; use New to create one with a given width. Bit
// positions are 1-based from the left to match the paper's notation:
// position 1 is the most significant conceptual position.
type Bitset struct {
	width int
	words []uint64
}

// New returns a Bitset of the given width with all bits zero.
// It panics if width is negative.
func New(width int) *Bitset {
	if width < 0 {
		panic(fmt.Sprintf("bitset: negative width %d", width))
	}
	return &Bitset{
		width: width,
		words: make([]uint64, (width+wordBits-1)/wordBits),
	}
}

// FromString parses a bit string such as "1011" into a Bitset whose
// width equals the string length. Characters other than '0' and '1'
// yield an error.
func FromString(s string) (*Bitset, error) {
	b := New(len(s))
	for i, c := range s {
		switch c {
		case '1':
			b.Set(i + 1)
		case '0':
		default:
			return nil, fmt.Errorf("bitset: invalid character %q at position %d", c, i+1)
		}
	}
	return b, nil
}

// MustFromString is FromString that panics on error. It is intended for
// tests and package-level literals.
func MustFromString(s string) *Bitset {
	b, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Width reports the number of bit positions in the set.
func (b *Bitset) Width() int { return b.width }

// locate maps a 1-based left position to (word index, mask).
func (b *Bitset) locate(pos int) (int, uint64) {
	if pos < 1 || pos > b.width {
		panic(fmt.Sprintf("bitset: position %d out of range [1,%d]", pos, b.width))
	}
	idx := pos - 1
	return idx / wordBits, 1 << (wordBits - 1 - uint(idx%wordBits))
}

// Set sets the bit at the given 1-based position (from the left).
func (b *Bitset) Set(pos int) {
	w, m := b.locate(pos)
	b.words[w] |= m
}

// Clear clears the bit at the given 1-based position.
func (b *Bitset) Clear(pos int) {
	w, m := b.locate(pos)
	b.words[w] &^= m
}

// Test reports whether the bit at the given 1-based position is set.
func (b *Bitset) Test(pos int) bool {
	w, m := b.locate(pos)
	return b.words[w]&m != 0
}

// Or sets b to b | other, in place. The widths must match.
func (b *Bitset) Or(other *Bitset) {
	b.checkWidth(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b to b & other, in place. The widths must match.
func (b *Bitset) And(other *Bitset) {
	b.checkWidth(other)
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot sets b to b &^ other, in place. The widths must match.
func (b *Bitset) AndNot(other *Bitset) {
	b.checkWidth(other)
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

func (b *Bitset) checkWidth(other *Bitset) {
	if b.width != other.width {
		panic(fmt.Sprintf("bitset: width mismatch %d vs %d", b.width, other.width))
	}
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{width: b.width, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Equal reports whether b and other have identical width and bits.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.width != other.width {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Contains reports whether b contains other in the sense of Section 2,
// Case 2 of the paper: b != other and (b & other) == other. Note that
// containment is strict; use ContainsOrEqual for the reflexive variant.
func (b *Bitset) Contains(other *Bitset) bool {
	return !b.Equal(other) && b.ContainsOrEqual(other)
}

// ContainsOrEqual reports whether (b & other) == other, i.e. every bit
// set in other is also set in b.
func (b *Bitset) ContainsOrEqual(other *Bitset) bool {
	b.checkWidth(other)
	for i, w := range other.words {
		if b.words[i]&w != w {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set.
func (b *Bitset) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Ones returns the 1-based positions of all set bits in increasing
// order. In path-id terms these are the encodings of the root-to-leaf
// paths the labeled element occurs on.
func (b *Bitset) Ones() []int {
	return b.OnesAppend(make([]int, 0, b.Count()))
}

// OnesAppend appends the 1-based positions of all set bits, in
// increasing order, to dst and returns the extended slice. It is the
// non-allocating variant of Ones for hot paths that reuse a buffer
// (pass dst[:0] to recycle it).
func (b *Bitset) OnesAppend(dst []int) []int {
	for wi, w := range b.words {
		for w != 0 {
			lz := bits.LeadingZeros64(w)
			pos := wi*wordBits + lz + 1
			if pos > b.width {
				break
			}
			dst = append(dst, pos)
			w &^= 1 << (wordBits - 1 - uint(lz))
		}
	}
	return dst
}

// ForEachOne calls fn with each set 1-based position in increasing
// order, stopping early when fn returns false. It never allocates,
// which makes it the iteration of choice inside the estimator's join
// kernel and other per-query paths.
func (b *Bitset) ForEachOne(fn func(pos int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			lz := bits.LeadingZeros64(w)
			pos := wi*wordBits + lz + 1
			if pos > b.width {
				break
			}
			if !fn(pos) {
				return
			}
			w &^= 1 << (wordBits - 1 - uint(lz))
		}
	}
}

// FirstOne returns the smallest 1-based set position, or 0 if the set
// is empty.
func (b *Bitset) FirstOne() int {
	for wi, w := range b.words {
		if w != 0 {
			pos := wi*wordBits + bits.LeadingZeros64(w) + 1
			if pos > b.width {
				return 0
			}
			return pos
		}
	}
	return 0
}

// AppendWords appends b's backing words to dst and returns the
// extended slice. Words are in ascending index order (position 1 lives
// in the most significant bit of the first appended word), so rows of
// equal-width bitsets appended back to back form a columnar arena with
// a fixed word stride of (width+63)/64. The appended words are copies;
// mutating dst never aliases b.
func (b *Bitset) AppendWords(dst []uint64) []uint64 {
	return append(dst, b.words...)
}

// The *Words functions below evaluate the Section 2 containment test
// ((anc & desc) == desc) directly over such an arena: a row is the
// stride words starting at its offset, and candidate rows are named by
// their row index (offset = index * stride). They are the inner loop
// of the estimator's path join — branch-light sequential sweeps over
// contiguous memory, with a single-word fast path for the common case
// of documents with at most 64 distinct root-to-leaf paths.

// ContainsWords reports whether the row at aOff contains-or-equals the
// row at bOff: (a & b) == b word-wise over stride words.
func ContainsWords(arena []uint64, aOff, bOff, stride int) bool {
	a := arena[aOff : aOff+stride]
	b := arena[bOff : bOff+stride : bOff+stride]
	for i, w := range b {
		if a[i]&w != w {
			return false
		}
	}
	return true
}

// ContainsAnyWords reports whether the row at aOff contains-or-equals
// at least one of the rows idxs (each at idx*stride). This is the
// ancestor-side pruning sweep of the path join: does this ancestor pid
// contain any surviving descendant pid?
func ContainsAnyWords(arena []uint64, aOff, stride int, idxs []int32) bool {
	if stride == 1 {
		a := arena[aOff]
		for _, idx := range idxs {
			w := arena[idx]
			if a&w == w {
				return true
			}
		}
		return false
	}
	for _, idx := range idxs {
		if ContainsWords(arena, aOff, int(idx)*stride, stride) {
			return true
		}
	}
	return false
}

// AnyContainsWords reports whether at least one of the rows idxs
// contains-or-equals the row at bOff — the descendant-side pruning
// sweep: is any surviving ancestor pid above this descendant pid?
func AnyContainsWords(arena []uint64, bOff, stride int, idxs []int32) bool {
	if stride == 1 {
		b := arena[bOff]
		for _, idx := range idxs {
			if arena[idx]&b == b {
				return true
			}
		}
		return false
	}
	for _, idx := range idxs {
		if ContainsWords(arena, int(idx)*stride, bOff, stride) {
			return true
		}
	}
	return false
}

// SumContainedWords is the fused contains+accumulate sweep: it sums
// freqs[k] over every k whose row idxs[k] is contained in the row at
// aOff, accumulating in slice order (k ascending) so callers that keep
// idxs in a canonical order get a bit-deterministic float sum.
// freqs is parallel to idxs (freqs[k] weighs row idxs[k]).
func SumContainedWords(arena []uint64, aOff, stride int, idxs []int32, freqs []float64) float64 {
	sum := 0.0
	if stride == 1 {
		a := arena[aOff]
		for k, idx := range idxs {
			w := arena[idx]
			if a&w == w {
				sum += freqs[k]
			}
		}
		return sum
	}
	for k, idx := range idxs {
		if ContainsWords(arena, aOff, int(idx)*stride, stride) {
			sum += freqs[k]
		}
	}
	return sum
}

// String renders the bit sequence as a string of '0' and '1', leftmost
// position first, exactly as printed in the paper's figures.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.width)
	for pos := 1; pos <= b.width; pos++ {
		if b.Test(pos) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Key returns a compact string usable as a map key. Two bitsets have
// the same key iff they are Equal. The representation is not
// human-readable; use String for display.
func (b *Bitset) Key() string {
	var sb strings.Builder
	sb.Grow(len(b.words)*8 + 4)
	sb.WriteByte(byte(b.width))
	sb.WriteByte(byte(b.width >> 8))
	sb.WriteByte(byte(b.width >> 16))
	sb.WriteByte(byte(b.width >> 24))
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			sb.WriteByte(byte(w >> uint(s)))
		}
	}
	return sb.String()
}

// Bytes returns the packed big-endian byte form of the sequence:
// position 1 is the most significant bit of the first byte. The final
// byte is zero-padded. This is the serialization format of path ids.
func (b *Bitset) Bytes() []byte {
	out := make([]byte, b.SizeBytes())
	b.ForEachOne(func(pos int) bool {
		out[(pos-1)/8] |= 0x80 >> uint((pos-1)%8)
		return true
	})
	return out
}

// FromBytes reconstructs a Bitset of the given width from its packed
// form. It rejects a buffer of the wrong length or stray bits beyond
// the width.
func FromBytes(width int, data []byte) (*Bitset, error) {
	b := New(width)
	if len(data) != b.SizeBytes() {
		return nil, fmt.Errorf("bitset: %d bytes for width %d, want %d", len(data), width, b.SizeBytes())
	}
	for i, by := range data {
		for j := 0; j < 8; j++ {
			if by&(0x80>>uint(j)) == 0 {
				continue
			}
			pos := i*8 + j + 1
			if pos > width {
				return nil, fmt.Errorf("bitset: stray bit at position %d beyond width %d", pos, width)
			}
			b.Set(pos)
		}
	}
	return b, nil
}

// SizeBytes returns the storage cost of the raw bit sequence, rounded
// up to whole bytes. This is the "Pid Size" column of Table 3.
func (b *Bitset) SizeBytes() int {
	return (b.width + 7) / 8
}
