package bitset

import (
	"math/rand"
	"testing"
)

// buildArena packs the given bitsets (all of one width) into a columnar
// arena via AppendWords and returns it with the word stride.
func buildArena(t *testing.T, sets []*Bitset) ([]uint64, int) {
	t.Helper()
	if len(sets) == 0 {
		return nil, 0
	}
	stride := (sets[0].Width() + wordBits - 1) / wordBits
	arena := make([]uint64, 0, len(sets)*stride)
	for _, b := range sets {
		n := len(arena)
		arena = b.AppendWords(arena)
		if len(arena)-n != stride {
			t.Fatalf("AppendWords appended %d words, want stride %d", len(arena)-n, stride)
		}
	}
	return arena, stride
}

func randomSets(rng *rand.Rand, width, n int) []*Bitset {
	sets := make([]*Bitset, n)
	for i := range sets {
		b := New(width)
		for pos := 1; pos <= width; pos++ {
			if rng.Intn(3) == 0 {
				b.Set(pos)
			}
		}
		sets[i] = b
	}
	return sets
}

func TestAppendWordsCopies(t *testing.T) {
	b := MustFromString("1010")
	arena := b.AppendWords(nil)
	arena[0] = 0
	if b.String() != "1010" {
		t.Fatalf("mutating the appended words changed the bitset: %s", b)
	}
}

// TestWordsAgainstBitsets is the equivalence property: every *Words
// verdict over an arena must agree with the pointer-based Bitset
// operations the arena rows were packed from, across widths on both
// sides of the one-word fast path.
func TestWordsAgainstBitsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 7, 64, 65, 130, 200} {
		sets := randomSets(rng, width, 24)
		arena, stride := buildArena(t, sets)
		idxs := make([]int32, len(sets))
		freqs := make([]float64, len(sets))
		for i := range sets {
			idxs[i] = int32(i)
			freqs[i] = float64(i + 1)
		}
		for i, a := range sets {
			for j, b := range sets {
				want := a.ContainsOrEqual(b)
				got := ContainsWords(arena, i*stride, j*stride, stride)
				if got != want {
					t.Fatalf("width %d: ContainsWords(%d,%d)=%v, Bitset says %v", width, i, j, got, want)
				}
			}
			// Any-sweeps against every suffix exercise both empty and
			// full candidate lists.
			for lo := 0; lo <= len(sets); lo++ {
				wantAny := false
				for _, b := range sets[lo:] {
					if a.ContainsOrEqual(b) {
						wantAny = true
						break
					}
				}
				if got := ContainsAnyWords(arena, i*stride, stride, idxs[lo:]); got != wantAny {
					t.Fatalf("width %d: ContainsAnyWords(%d, idxs[%d:])=%v, want %v", width, i, lo, got, wantAny)
				}
				wantRev := false
				for _, b := range sets[lo:] {
					if b.ContainsOrEqual(a) {
						wantRev = true
						break
					}
				}
				if got := AnyContainsWords(arena, i*stride, stride, idxs[lo:]); got != wantRev {
					t.Fatalf("width %d: AnyContainsWords(%d, idxs[%d:])=%v, want %v", width, i, lo, got, wantRev)
				}
			}
			wantSum := 0.0
			for k, b := range sets {
				if a.ContainsOrEqual(b) {
					wantSum += freqs[k]
				}
			}
			if got := SumContainedWords(arena, i*stride, stride, idxs, freqs); got != wantSum {
				t.Fatalf("width %d: SumContainedWords(%d)=%v, want %v", width, i, got, wantSum)
			}
		}
	}
}

// TestSumContainedWordsOrder pins the accumulation order: the sum is
// taken in idxs slice order, so a permuted candidate list may change
// the last bits — callers rely on passing a canonical order.
func TestSumContainedWordsOrder(t *testing.T) {
	all := MustFromString("1111")
	sets := []*Bitset{all, all, all}
	arena, stride := buildArena(t, sets)
	freqs := []float64{0.1, 0.2, 0.3}
	got := SumContainedWords(arena, 0, stride, []int32{0, 1, 2}, freqs)
	want := 0.0
	for _, f := range freqs {
		want += f
	}
	if got != want {
		t.Fatalf("sum %v, want the slice-order sum %v", got, want)
	}
}
