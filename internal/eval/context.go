package eval

import (
	"context"
	"fmt"

	"xpathest/internal/guard"
	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

// evalCanceled is the panic payload the cancellation probe throws to
// unwind the evaluator's recursive phases; MatchesContext recovers it
// and converts it to the guard.ErrCanceled-wrapped error. It never
// escapes this file.
type evalCanceled struct{ err error }

// cancelCheckEvery is how many candidate tests pass between context
// polls during evaluation — candidate loops are the O(candidates ×
// query size) hot part of exact evaluation, so this is the boundary
// where a canceled exact count on a huge document stops promptly.
const cancelCheckEvery = 1024

// MatchesContext is Matches honoring cancellation at candidate-loop
// boundaries. The probe rides the CandidateFilter hook, so the
// evaluator's phases need no context plumbing of their own.
func (e *Evaluator) MatchesContext(ctx context.Context, p *xpath.Path) (nodes []*xmltree.Node, err error) {
	if ctx == nil || ctx.Done() == nil {
		return e.Matches(p)
	}
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(evalCanceled)
			if !ok {
				panic(r)
			}
			nodes, err = nil, c.err
		}
	}()
	n := 0
	probe := func(q *xpath.TreeNode, d *xmltree.Node) bool {
		n++
		if n%cancelCheckEvery == 0 {
			if cerr := guard.CheckContext(ctx); cerr != nil {
				panic(evalCanceled{err: fmt.Errorf("eval: %w", cerr)})
			}
		}
		return true
	}
	return e.MatchesFiltered(p, probe)
}

// SelectivityContext is Selectivity honoring cancellation at
// candidate-loop boundaries.
func (e *Evaluator) SelectivityContext(ctx context.Context, p *xpath.Path) (int, error) {
	m, err := e.MatchesContext(ctx, p)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}
