package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xpathest/internal/paperfig"
	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

func sel(t testing.TB, doc *xmltree.Document, q string) int {
	t.Helper()
	got, err := New(doc).Selectivity(xpath.MustParse(q))
	if err != nil {
		t.Fatalf("Selectivity(%s): %v", q, err)
	}
	return got
}

// TestPaperSelectivities pins every worked selectivity of the paper's
// running example against the Figure 1 document.
func TestPaperSelectivities(t *testing.T) {
	doc := paperfig.Doc()
	cases := []struct {
		q    string
		want int
	}{
		// Example 4.2: //A//C — both A and C have selectivity 2.
		{"//A//C", 2},
		{"//A!//C", 2},
		// Q1 of Example 4.1 = //A[/C/F]/B/D.
		{"//A![/C/F]/B/D", 1},
		{"//A[/C/F!]/B/D", 1},
		{"//A[/C!/F]/B/D", 1},
		{"//A[/C/F]/B!/D", 2},
		{"//A[/C/F]/B/D", 2},
		// Q2 of Example 4.3 = //C[/E]/F with target E: exactly one E.
		{"//C[/E!]/F", 1},
		{"//C![/E]/F", 1},
		{"//C[/E]/F", 1},
		// Q′2 = //C/E (Example 4.5).
		{"//C/E", 2},
		{"//C!/E", 2},
		// Q⃗1 of Example 5.1 = A[/C[/F]/folls::B/D] with target B.
		{"A[/C[/F]/folls::B!/D]", 1},
		// Example 5.2: same query, target D.
		{"A[/C[/F]/folls::B/D!]", 1},
		// Target in trunk.
		{"A![/C[/F]/folls::B/D]", 1},
		// Q⃗′1 = A[/C/folls::B/D] (Figure 5(b)) — the B matches are
		// those after a C: B_c under A2 and B_d under A3.
		{"A[/C/folls::B!/D]", 2},
		{"A![/C/folls::B/D]", 2},
		// Example 5.3: //A[/C/foll::D] with target D.
		{"//A[/C/foll::D!]", 2},
		{"//A![/C/foll::D]", 2},
		// Its rewritten form //A[/C/folls::B/D].
		{"//A[/C/folls::B/D!]", 2},
		// Preceding-sibling mirror: B with a preceding sibling C.
		{"A[/C/pres::B!]", 1},
		// B before C: only B_b of A2.
		{"A[/B/folls::C!]", 1},
		{"A[/B!/folls::C]", 1},
		// Simple paths.
		{"/Root", 1},
		{"/Root/A/B/D", 4},
		{"//B/D", 4},
		{"//B/E", 1},
		{"//D", 4},
		{"/A", 0}, // document root is Root, not A
		// Negative queries.
		{"//A/F", 0},
		{"//C[/D]/E", 0},
		{"A[/B/folls::F!]", 0},
		// Same-tag sibling order: first B of A2 precedes the second.
		{"A[/B/folls::B!]", 1},
		{"A[/B!/folls::B]", 1},
		// Wildcard.
		{"//A/*", 6},
		{"//*", 18},
	}
	for _, c := range cases {
		if got := sel(t, doc, c.q); got != c.want {
			t.Errorf("Selectivity(%s) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestMatchesReturnsNodes(t *testing.T) {
	doc := paperfig.Doc()
	m, err := New(doc).Matches(xpath.MustParse("//C/E"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("got %d matches", len(m))
	}
	for i, n := range m {
		if n.Tag != "E" {
			t.Fatalf("match %d has tag %s", i, n.Tag)
		}
		if n.Parent.Tag != "C" {
			t.Fatalf("match %d parent %s", i, n.Parent.Tag)
		}
	}
	if m[0].Ord >= m[1].Ord {
		t.Fatal("matches not in document order")
	}
}

func TestUnanchorableQueryErrors(t *testing.T) {
	doc := paperfig.Doc()
	_, err := New(doc).Selectivity(xpath.MustParse("//A[//C/folls::B]"))
	if err == nil {
		t.Fatal("expected anchor error")
	}
}

func TestFollowingExcludesOwnSubtree(t *testing.T) {
	// r/a: c(x), c(d(x)) — foll::x from the first c must not see the x
	// inside the first c itself; it sees the x under the second c.
	b := xmltree.NewBuilder()
	b.Open("r").Open("a")
	b.Open("c").Leaf("x", "").Close()
	b.Open("c").Open("d").Leaf("x", "").Close().Close()
	b.Close().Close()
	doc := b.Document()

	// x following the first c: only the nested one (1 match).
	if got := sel(t, doc, "//a[/c/foll::x!]"); got != 1 {
		t.Fatalf("foll::x = %d, want 1", got)
	}
	// pre::x from the second c sees the x inside the first c's
	// subtree (descendant-or-self of a preceding sibling).
	if got := sel(t, doc, "//a[/c/pre::x!]"); got != 1 {
		t.Fatalf("pre::x = %d, want 1", got)
	}
	// Pinning the context to the first c (the one with a direct x
	// child) leaves nothing before it.
	if got := sel(t, doc, "//a[/c[/x]/pre::x!]"); got != 0 {
		t.Fatalf("pre::x from first c = %d, want 0", got)
	}
}

func TestTrunkContinuesAfterBranch(t *testing.T) {
	doc := paperfig.Doc()
	// q1[/q2]/q3 with target in q3.
	if got := sel(t, doc, "//A[/C]/B/D"); got != 3 {
		// A2 and A3 have C; their B/D chains: B_b/D, B_c/D, B_d/D.
		t.Fatalf("//A[/C]/B/D = %d, want 3", got)
	}
	if got := sel(t, doc, "//A[/C]/B!/D"); got != 3 {
		t.Fatalf("//A[/C]/B! = %d, want 3", got)
	}
}

// --- brute-force cross-validation ---

// bruteMatches enumerates all embeddings of the query tree directly.
func bruteMatches(doc *xmltree.Document, p *xpath.Path) (map[*xmltree.Node]bool, error) {
	return bruteMatchesOpt(doc, p, true)
}

// bruteMatchesNoOrder enumerates embeddings ignoring order edges.
func bruteMatchesNoOrder(doc *xmltree.Document, p *xpath.Path) (map[*xmltree.Node]bool, error) {
	return bruteMatchesOpt(doc, p, false)
}

func bruteMatchesOpt(doc *xmltree.Document, p *xpath.Path, checkOrder bool) (map[*xmltree.Node]bool, error) {
	tree, err := xpath.BuildTree(p)
	if err != nil {
		return nil, err
	}
	var all []*xmltree.Node
	doc.Walk(func(n *xmltree.Node) bool { all = append(all, n); return true })

	isDesc := func(anc, n *xmltree.Node) bool {
		for cur := n.Parent; cur != nil; cur = cur.Parent {
			if cur == anc {
				return true
			}
		}
		return false
	}
	anchorPos := func(parent, n *xmltree.Node) int {
		cur := n
		for cur.Parent != parent {
			cur = cur.Parent
		}
		return cur.Pos
	}

	targets := map[*xmltree.Node]bool{}
	assign := map[*xpath.TreeNode]*xmltree.Node{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(tree.Nodes) {
			// Check order edges on the complete assignment.
			if checkOrder {
				for _, e := range tree.Edges {
					pd := assign[e.Parent]
					if anchorPos(pd, assign[e.Before]) >= anchorPos(pd, assign[e.After]) {
						return
					}
				}
			}
			targets[assign[tree.Target]] = true
			return
		}
		q := tree.Nodes[i]
		var cands []*xmltree.Node
		if q.Parent.IsVRoot() {
			if q.Axis == xpath.Child {
				cands = []*xmltree.Node{doc.Root}
			} else {
				cands = all
			}
		} else {
			pd := assign[q.Parent]
			if q.Axis == xpath.Child {
				cands = pd.Children
			} else {
				for _, n := range all {
					if isDesc(pd, n) {
						cands = append(cands, n)
					}
				}
			}
		}
		for _, c := range cands {
			if q.Tag != "*" && c.Tag != q.Tag {
				continue
			}
			if q.Step != nil && !brutePosOK(c, q.Step.Pos) {
				continue
			}
			assign[q] = c
			rec(i + 1)
		}
		delete(assign, q)
	}
	rec(0)
	return targets, nil
}

// brutePosOK checks positional filters by direct sibling scan.
func brutePosOK(n *xmltree.Node, pos xpath.PosFilter) bool {
	if pos == xpath.PosNone || n.Parent == nil {
		return true
	}
	if pos == xpath.PosFirst {
		for i := 0; i < n.Pos; i++ {
			if n.Parent.Children[i].Tag == n.Tag {
				return false
			}
		}
		return true
	}
	for i := n.Pos + 1; i < len(n.Parent.Children); i++ {
		if n.Parent.Children[i].Tag == n.Tag {
			return false
		}
	}
	return true
}

func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	tags := []string{"a", "b", "c"}
	b := xmltree.NewBuilder()
	n := 1
	b.Open("r")
	var grow func(depth int)
	grow = func(depth int) {
		kids := rng.Intn(4)
		for i := 0; i < kids && n < maxNodes; i++ {
			n++
			b.Open(tags[rng.Intn(len(tags))])
			if depth < 4 {
				grow(depth + 1)
			}
			b.Close()
		}
	}
	grow(0)
	b.Close()
	return b.Document()
}

func randomQuery(rng *rand.Rand) *xpath.Path {
	tags := []string{"a", "b", "c", "r"}
	pick := func() string { return tags[rng.Intn(len(tags))] }
	var build func(depth, steps int, allowOrder bool) *xpath.Path
	build = func(depth, steps int, allowOrder bool) *xpath.Path {
		p := &xpath.Path{}
		n := 1 + rng.Intn(steps)
		for i := 0; i < n; i++ {
			axis := xpath.Child
			if rng.Intn(3) == 0 {
				axis = xpath.Descendant
			}
			if allowOrder && i > 0 && p.Steps[i-1].Axis == xpath.Child && rng.Intn(3) == 0 {
				axis = []xpath.Axis{xpath.FollowingSibling, xpath.PrecedingSibling,
					xpath.Following, xpath.Preceding}[rng.Intn(4)]
			}
			s := &xpath.Step{Axis: axis, Tag: pick()}
			if axis == xpath.Child && rng.Intn(6) == 0 {
				s.Pos = []xpath.PosFilter{xpath.PosFirst, xpath.PosLast}[rng.Intn(2)]
			}
			if depth < 1 && rng.Intn(3) == 0 {
				s.Preds = append(s.Preds, build(depth+1, 2, true))
			}
			p.Steps = append(p.Steps, s)
		}
		return p
	}
	p := build(0, 3, false)
	// Mark a random step as target half the time.
	if rng.Intn(2) == 0 {
		var steps []*xpath.Step
		var collect func(q *xpath.Path)
		collect = func(q *xpath.Path) {
			for _, s := range q.Steps {
				steps = append(steps, s)
				for _, pr := range s.Preds {
					collect(pr)
				}
			}
		}
		collect(p)
		steps[rng.Intn(len(steps))].Target = true
	}
	return p
}

// Property: the three-phase evaluator agrees with brute-force
// embedding enumeration on random documents and queries.
func TestQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(35))
		ev := New(doc)
		for k := 0; k < 4; k++ {
			q := randomQuery(rng)
			want, err := bruteMatches(doc, q)
			if err != nil {
				continue // unanchorable: evaluator must also error
			}
			got, err := ev.Selectivity(q)
			if err != nil {
				t.Logf("seed %d query %s: evaluator error %v", seed, q, err)
				return false
			}
			if got != len(want) {
				t.Logf("seed %d query %s: got %d, want %d", seed, q, got, len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: an order query never selects more target nodes than the
// same query with its order constraints dropped (the upper-bound fact
// behind Equation 5). The relaxation is computed by brute force with
// the edge check disabled — structurally identical embeddings, no
// ordering.
func TestQuickOrderUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 2+rng.Intn(35))
		ev := New(doc)
		for k := 0; k < 4; k++ {
			q := randomQuery(rng)
			if !q.HasOrderAxis() {
				continue
			}
			got, err := ev.Selectivity(q)
			if err != nil {
				continue
			}
			relaxed, err := bruteMatchesNoOrder(doc, q)
			if err != nil {
				return false
			}
			if got > len(relaxed) {
				t.Logf("seed %d query %s: ordered %d > relaxed %d", seed, q, got, len(relaxed))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectivityPaperDoc(b *testing.B) {
	doc := paperfig.Doc()
	ev := New(doc)
	q := xpath.MustParse("A[/C[/F]/folls::B!/D]")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Selectivity(q); err != nil {
			b.Fatal(err)
		}
	}
}
