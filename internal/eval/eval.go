// Package eval computes exact XPath selectivities on a document tree.
// It is the ground truth the estimation experiments are scored against
// (the "actual" in the paper's relative error), and the filter that
// removes negative queries from generated workloads (Section 7).
//
// Semantics follow the paper's Section 5 reading of order queries: in
// q1[/q2/folls::q3] both branches hang off the same instance of q1's
// last node, and the first node of q2 must precede the first node of
// q3 among its siblings; following/preceding reach the
// descendants-or-self of following/preceding siblings (see DESIGN.md
// for the deviation from the W3C document-global axes).
//
// The evaluator runs in three phases over the query tree:
//
//  1. bottom-up: Sat(q) = document nodes satisfying the subquery
//     rooted at q, with order constraints solved per candidate by a
//     greedy topological assignment over sibling anchor positions;
//  2. top-down: Live(q) = members of Sat(q) that participate in at
//     least one full embedding of the whole query;
//  3. the selectivity of the target step is |Live(target)|.
package eval

import (
	"fmt"
	"sort"

	"xpathest/internal/xmltree"
	"xpathest/internal/xpath"
)

// Evaluator evaluates queries against one document. It is safe for
// concurrent use after construction.
type Evaluator struct {
	doc        *xmltree.Document
	byTag      map[string][]*xmltree.Node // document order
	allNodes   []*xmltree.Node            // by Ord
	subtreeEnd []int                      // Ord -> exclusive end of subtree

	// firstOfTag/lastOfTag report whether the node has no earlier/later
	// same-tag sibling — the [1] and [last()] positional filters.
	firstOfTag []bool
	lastOfTag  []bool
}

// New indexes a document for evaluation.
func New(doc *xmltree.Document) *Evaluator {
	e := &Evaluator{
		doc:        doc,
		byTag:      make(map[string][]*xmltree.Node),
		allNodes:   make([]*xmltree.Node, doc.NumElements()),
		subtreeEnd: make([]int, doc.NumElements()),
	}
	doc.Walk(func(n *xmltree.Node) bool {
		e.allNodes[n.Ord] = n
		e.byTag[n.Tag] = append(e.byTag[n.Tag], n)
		return true
	})
	var size func(n *xmltree.Node) int
	size = func(n *xmltree.Node) int {
		s := 1
		for _, c := range n.Children {
			s += size(c)
		}
		e.subtreeEnd[n.Ord] = n.Ord + s
		return s
	}
	if doc.Root != nil {
		size(doc.Root)
	}

	e.firstOfTag = make([]bool, doc.NumElements())
	e.lastOfTag = make([]bool, doc.NumElements())
	doc.Walk(func(n *xmltree.Node) bool {
		lastSeen := map[string]*xmltree.Node{}
		for _, c := range n.Children {
			if lastSeen[c.Tag] == nil {
				e.firstOfTag[c.Ord] = true
			}
			lastSeen[c.Tag] = c
		}
		for _, c := range lastSeen {
			e.lastOfTag[c.Ord] = true
		}
		return true
	})
	if doc.Root != nil {
		e.firstOfTag[doc.Root.Ord] = true
		e.lastOfTag[doc.Root.Ord] = true
	}
	return e
}

// posOK applies a step's positional filter to a candidate node.
func (e *Evaluator) posOK(n *xmltree.Node, pos xpath.PosFilter) bool {
	switch pos {
	case xpath.PosFirst:
		return e.firstOfTag[n.Ord]
	case xpath.PosLast:
		return e.lastOfTag[n.Ord]
	}
	return true
}

// Selectivity returns the number of distinct document nodes bound to
// the query's target step over all matches — the S_Q(n) of the paper.
func (e *Evaluator) Selectivity(p *xpath.Path) (int, error) {
	m, err := e.Matches(p)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}

// Matches returns the distinct document nodes bound to the target
// step, in document order.
func (e *Evaluator) Matches(p *xpath.Path) ([]*xmltree.Node, error) {
	return e.MatchesFiltered(p, nil)
}

// CandidateFilter restricts the document nodes considered for a query
// node during evaluation. It must be sound (never reject a node that
// participates in a match); the pid-accelerated executor of package
// exec derives one from the path join.
type CandidateFilter func(q *xpath.TreeNode, n *xmltree.Node) bool

// MatchesFiltered is Matches with an optional candidate filter (nil
// means no restriction).
func (e *Evaluator) MatchesFiltered(p *xpath.Path, filter CandidateFilter) ([]*xmltree.Node, error) {
	tree, err := xpath.BuildTree(p)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	sat := e.computeSat(tree, filter)
	live := e.computeLive(tree, sat)
	ords := live[tree.Target]
	out := make([]*xmltree.Node, 0, len(ords))
	for ord := range ords {
		out = append(out, e.allNodes[ord])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ord < out[j].Ord })
	return out, nil
}

// SelectivityFiltered is Selectivity with an optional candidate filter.
func (e *Evaluator) SelectivityFiltered(p *xpath.Path, filter CandidateFilter) (int, error) {
	m, err := e.MatchesFiltered(p, filter)
	if err != nil {
		return 0, err
	}
	return len(m), nil
}

// satSet is a satisfiability set: sorted ord list plus membership.
type satSet struct {
	ords   []int // ascending
	member map[int]bool
}

func newSatSet() *satSet { return &satSet{member: make(map[int]bool)} }

func (s *satSet) add(ord int) {
	if !s.member[ord] {
		s.member[ord] = true
		s.ords = append(s.ords, ord)
	}
}

// anyInRange reports whether the set intersects [lo, hi). The ord list
// must be sorted, which holds when candidates are added in document
// order.
func (s *satSet) anyInRange(lo, hi int) bool {
	i := sort.SearchInts(s.ords, lo)
	return i < len(s.ords) && s.ords[i] < hi
}

// inRange returns the ords within [lo, hi).
func (s *satSet) inRange(lo, hi int) []int {
	i := sort.SearchInts(s.ords, lo)
	j := sort.SearchInts(s.ords, hi)
	return s.ords[i:j]
}

// computeSat fills Sat(q) bottom-up (postorder).
func (e *Evaluator) computeSat(tree *xpath.Tree, filter CandidateFilter) map[*xpath.TreeNode]*satSet {
	sat := make(map[*xpath.TreeNode]*satSet)
	var rec func(q *xpath.TreeNode)
	rec = func(q *xpath.TreeNode) {
		for _, c := range q.Children {
			rec(c)
		}
		set := newSatSet()
		for _, d := range e.candidates(q.Tag) {
			if q.Step != nil && !e.posOK(d, q.Step.Pos) {
				continue
			}
			if filter != nil && !filter(q, d) {
				continue
			}
			if e.localSat(tree, q, d, sat) {
				set.add(d.Ord)
			}
		}
		sat[q] = set
	}
	for _, c := range tree.VRoot.Children {
		rec(c)
	}
	return sat
}

func (e *Evaluator) candidates(tag string) []*xmltree.Node {
	if tag == "*" {
		return e.allNodes
	}
	return e.byTag[tag]
}

// localSat checks that document node d can host query node q: every
// plain structural child has a witness below d, and the order edges
// anchored at q admit a consistent sibling-position assignment.
func (e *Evaluator) localSat(tree *xpath.Tree, q *xpath.TreeNode, d *xmltree.Node, sat map[*xpath.TreeNode]*satSet) bool {
	for _, qc := range q.Children {
		if tree.InOrderEdge(qc) {
			continue // existence enforced through anchor positions
		}
		if !e.hasWitness(qc, d, sat[qc]) {
			return false
		}
	}
	edges := tree.OrderEdgesAt(q)
	if len(edges) == 0 {
		return true
	}
	domains := e.anchorDomains(edges, d, sat)
	if domains == nil {
		return false
	}
	return solveOrder(edges, domains, nil)
}

// hasWitness reports whether d has a child (Child axis) or strict
// descendant (Descendant axis) in set.
func (e *Evaluator) hasWitness(qc *xpath.TreeNode, d *xmltree.Node, set *satSet) bool {
	if qc.Axis == xpath.Descendant {
		return set.anyInRange(d.Ord+1, e.subtreeEnd[d.Ord])
	}
	// Child axis: walk the sat nodes inside d's subtree and test
	// parenthood; sat lists are usually much shorter than huge child
	// lists (e.g. the DBLP root).
	for _, ord := range set.inRange(d.Ord+1, e.subtreeEnd[d.Ord]) {
		if e.allNodes[ord].Parent == d {
			return true
		}
	}
	return false
}

// anchorDomains computes, for every distinct endpoint of the edges,
// the sorted distinct sibling positions (indexes into d.Children)
// under which a satisfying match exists. A nil return means some
// endpoint has an empty domain.
func (e *Evaluator) anchorDomains(edges []xpath.OrderEdge, d *xmltree.Node, sat map[*xpath.TreeNode]*satSet) map[*xpath.TreeNode][]int {
	domains := make(map[*xpath.TreeNode][]int)
	for _, edge := range edges {
		for _, v := range []*xpath.TreeNode{edge.Before, edge.After} {
			if _, done := domains[v]; done {
				continue
			}
			dom := e.anchorPositions(v, d, sat[v])
			if len(dom) == 0 {
				return nil
			}
			domains[v] = dom
		}
	}
	return domains
}

// anchorPositions finds the sibling positions of d's children that
// anchor a match of v: the child itself for Child-axis endpoints, the
// child whose subtree holds a match for Descendant-axis ones.
func (e *Evaluator) anchorPositions(v *xpath.TreeNode, d *xmltree.Node, set *satSet) []int {
	var out []int
	last := -1
	if v.Axis == xpath.Child {
		for _, ord := range set.inRange(d.Ord+1, e.subtreeEnd[d.Ord]) {
			n := e.allNodes[ord]
			if n.Parent == d && n.Pos != last {
				out = append(out, n.Pos)
				last = n.Pos
			}
		}
		return out
	}
	// Descendant: climb from each match to the child of d above it
	// (or the match itself when it is a direct child).
	seen := map[int]bool{}
	for _, ord := range set.inRange(d.Ord+1, e.subtreeEnd[d.Ord]) {
		n := e.allNodes[ord]
		for n.Parent != d {
			n = n.Parent
		}
		if !seen[n.Pos] {
			seen[n.Pos] = true
			out = append(out, n.Pos)
		}
	}
	sort.Ints(out)
	return out
}

// solveOrder decides whether positions can be assigned to the edge
// endpoints so that every Before endpoint sits strictly left of its
// After endpoint. fixed optionally pins endpoints to single positions
// (used by the liveness phase). The solver assigns greedily in
// topological order of the precedence DAG: each variable takes the
// smallest domain value exceeding all its predecessors' assignments,
// which is feasible iff any assignment is. Cycles are unsatisfiable.
func solveOrder(edges []xpath.OrderEdge, domains map[*xpath.TreeNode][]int, fixed map[*xpath.TreeNode]int) bool {
	// Collect variables and the precedence relation.
	var vars []*xpath.TreeNode
	index := map[*xpath.TreeNode]int{}
	addVar := func(v *xpath.TreeNode) {
		if _, ok := index[v]; !ok {
			index[v] = len(vars)
			vars = append(vars, v)
		}
	}
	for _, e := range edges {
		addVar(e.Before)
		addVar(e.After)
	}
	n := len(vars)
	preds := make([][]int, n) // preds[i] = vars that must be < vars[i]
	indeg := make([]int, n)
	for _, e := range edges {
		b, a := index[e.Before], index[e.After]
		preds[a] = append(preds[a], b)
		indeg[a]++
	}

	assigned := make([]int, n)
	done := make([]bool, n)
	remaining := n
	for remaining > 0 {
		progress := false
		for i := 0; i < n; i++ {
			if done[i] || indeg[i] != 0 {
				continue
			}
			// Lower bound: one past the max of assigned predecessors.
			low := -1
			for _, p := range preds[i] {
				if assigned[p] >= low {
					low = assigned[p] + 1
				}
			}
			dom := domains[vars[i]]
			if f, ok := fixed[vars[i]]; ok {
				if f < low {
					return false
				}
				assigned[i] = f
			} else {
				j := sort.SearchInts(dom, low)
				if j == len(dom) {
					return false
				}
				assigned[i] = dom[j]
			}
			done[i] = true
			remaining--
			progress = true
			// Release successors.
			for k := 0; k < n; k++ {
				for _, p := range preds[k] {
					if p == i {
						indeg[k]--
					}
				}
			}
		}
		if !progress {
			return false // cycle: contradictory order constraints
		}
	}
	return true
}

// computeLive propagates liveness top-down from the virtual root.
func (e *Evaluator) computeLive(tree *xpath.Tree, sat map[*xpath.TreeNode]*satSet) map[*xpath.TreeNode]map[int]bool {
	live := make(map[*xpath.TreeNode]map[int]bool)
	for _, q := range tree.Nodes {
		live[q] = make(map[int]bool)
	}

	// Seed from the virtual root, whose only "child position" is the
	// document element at position 0.
	if !e.vrootSat(tree, sat) {
		return live
	}
	for _, qc := range tree.VRoot.Children {
		e.markUsable(tree, qc, nil, sat, live)
	}

	// Preorder propagation: a node's live set is complete before its
	// children are processed because liveness only flows downward.
	var rec func(q *xpath.TreeNode)
	rec = func(q *xpath.TreeNode) {
		for ord := range live[q] {
			d := e.allNodes[ord]
			for _, qc := range q.Children {
				if !tree.InOrderEdge(qc) {
					e.markPlain(qc, d, sat, live)
				} else {
					e.markOrdered(tree, q, qc, d, sat, live)
				}
			}
		}
		for _, qc := range q.Children {
			rec(qc)
		}
	}
	for _, qc := range tree.VRoot.Children {
		rec(qc)
	}
	return live
}

// vrootSat checks the virtual root's local constraints: every plain
// top-level query node must have a witness in the document (the root
// element for Child axis), and order edges anchored at the virtual
// root must be solvable over its single child position.
func (e *Evaluator) vrootSat(tree *xpath.Tree, sat map[*xpath.TreeNode]*satSet) bool {
	root := e.doc.Root
	for _, qc := range tree.VRoot.Children {
		if tree.InOrderEdge(qc) {
			continue
		}
		if qc.Axis == xpath.Child {
			if !sat[qc].member[root.Ord] {
				return false
			}
		} else if len(sat[qc].ords) == 0 {
			return false
		}
	}
	edges := tree.OrderEdgesAt(tree.VRoot)
	if len(edges) == 0 {
		return true
	}
	domains := make(map[*xpath.TreeNode][]int)
	for _, edge := range edges {
		for _, v := range []*xpath.TreeNode{edge.Before, edge.After} {
			var dom []int
			if v.Axis == xpath.Child {
				if sat[v].member[root.Ord] {
					dom = []int{0}
				}
			} else if len(sat[v].ords) > 0 {
				dom = []int{0}
			}
			if len(dom) == 0 {
				return false
			}
			domains[v] = dom
		}
	}
	return solveOrder(edges, domains, nil)
}

// markUsable marks the top-level usable matches of qc under the
// virtual root (d == nil).
func (e *Evaluator) markUsable(tree *xpath.Tree, qc *xpath.TreeNode, _ *xmltree.Node, sat map[*xpath.TreeNode]*satSet, live map[*xpath.TreeNode]map[int]bool) {
	root := e.doc.Root
	if qc.Axis == xpath.Child {
		if sat[qc].member[root.Ord] {
			live[qc][root.Ord] = true
		}
		return
	}
	for _, ord := range sat[qc].ords {
		live[qc][ord] = true
	}
}

// markPlain marks every witness of a constraint-free child.
func (e *Evaluator) markPlain(qc *xpath.TreeNode, d *xmltree.Node, sat map[*xpath.TreeNode]*satSet, live map[*xpath.TreeNode]map[int]bool) {
	if qc.Axis == xpath.Descendant {
		for _, ord := range sat[qc].inRange(d.Ord+1, e.subtreeEnd[d.Ord]) {
			live[qc][ord] = true
		}
		return
	}
	for _, ord := range sat[qc].inRange(d.Ord+1, e.subtreeEnd[d.Ord]) {
		if e.allNodes[ord].Parent == d {
			live[qc][ord] = true
		}
	}
}

// markOrdered marks the matches of an order-constrained child qc under
// live parent d: those reachable through an anchor position that
// participates in a consistent assignment of all edges at q.
func (e *Evaluator) markOrdered(tree *xpath.Tree, q, qc *xpath.TreeNode, d *xmltree.Node, sat map[*xpath.TreeNode]*satSet, live map[*xpath.TreeNode]map[int]bool) {
	edges := tree.OrderEdgesAt(q)
	domains := e.anchorDomains(edges, d, sat)
	if domains == nil {
		return
	}
	for _, pos := range domains[qc] {
		if !solveOrder(edges, domains, map[*xpath.TreeNode]int{qc: pos}) {
			continue
		}
		anchor := d.Children[pos]
		if qc.Axis == xpath.Child {
			live[qc][anchor.Ord] = true
			continue
		}
		for _, ord := range sat[qc].inRange(anchor.Ord, e.subtreeEnd[anchor.Ord]) {
			live[qc][ord] = true
		}
	}
}
